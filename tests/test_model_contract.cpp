// Model-contract conformance suite: the properties every backend behind
// mag::HysteresisModel must satisfy (determinism, reset-equals-fresh,
// virgin state, bounded magnetisation), instantiated for TimelessJa and
// EnergyBased, plus the contract's planning-layer half — ModelSpec
// validation rules, result tagging, scalar-vs-SoA parity, and bitwise
// identity of mixed JA + energy batches across run / packed run /
// packed-streaming at several thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/result_sink.hpp"
#include "core/scenario.hpp"
#include "mag/bh.hpp"
#include "mag/energy_based.hpp"
#include "mag/energy_based_batch.hpp"
#include "mag/model.hpp"
#include "mag/timeless_ja.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fc = ferro::core;
namespace fw = ferro::wave;
namespace ts = ferro::testsupport;

namespace {

// Per-model factory so the typed suite below can instantiate either
// backend in a representative configuration.
template <typename M>
struct Factory;

template <>
struct Factory<fm::TimelessJa> {
  static fm::TimelessJa make() {
    return fm::TimelessJa(fm::paper_parameters(), ts::paper_config());
  }
  static constexpr fm::ModelKind kExpectedKind = fm::ModelKind::kJilesAtherton;
};

template <>
struct Factory<fm::EnergyBased> {
  static fm::EnergyBased make() {
    return fm::EnergyBased(fm::energy_reference_parameters());
  }
  static constexpr fm::ModelKind kExpectedKind = fm::ModelKind::kEnergyBased;
};

void expect_bitwise_equal(const fm::BhCurve& a, const fm::BhCurve& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].h, b.points()[i].h) << "point " << i;
    EXPECT_EQ(a.points()[i].m, b.points()[i].m) << "point " << i;
    EXPECT_EQ(a.points()[i].b, b.points()[i].b) << "point " << i;
  }
}

template <typename M>
class ModelContract : public ::testing::Test {};

using ContractModels = ::testing::Types<fm::TimelessJa, fm::EnergyBased>;
TYPED_TEST_SUITE(ModelContract, ContractModels);

}  // namespace

TYPED_TEST(ModelContract, SatisfiesTheConcept) {
  static_assert(fm::HysteresisModel<TypeParam>);
  EXPECT_EQ(TypeParam::kind(), Factory<TypeParam>::kExpectedKind);
  EXPECT_FALSE(fm::to_string(TypeParam::kind()).empty());
}

TYPED_TEST(ModelContract, VirginStateIsDemagnetised) {
  TypeParam model = Factory<TypeParam>::make();
  EXPECT_EQ(model.magnetisation(), 0.0);
  EXPECT_EQ(model.flux_density(), 0.0);
}

TYPED_TEST(ModelContract, ReplayIsDeterministicBitwise) {
  const fw::HSweep sweep = ts::major_loop(20.0, 2);
  TypeParam first = Factory<TypeParam>::make();
  TypeParam second = Factory<TypeParam>::make();
  expect_bitwise_equal(fm::run_sweep(first, sweep),
                       fm::run_sweep(second, sweep));
}

TYPED_TEST(ModelContract, ResetRestoresTheVirginStateBitwise) {
  const fw::HSweep sweep = ts::major_loop(20.0, 2);
  TypeParam model = Factory<TypeParam>::make();
  const fm::BhCurve fresh = fm::run_sweep(model, sweep);
  model.reset();
  EXPECT_EQ(model.magnetisation(), 0.0);
  expect_bitwise_equal(fm::run_sweep(model, sweep), fresh);
}

TYPED_TEST(ModelContract, MagnetisationStaysBounded) {
  TypeParam model = Factory<TypeParam>::make();
  double peak = 0.0;
  for (const double h : {1e5, -1e6, 1e7, -1e7, 0.0}) {
    peak = std::max(peak, std::fabs(model.apply(h)));
  }
  EXPECT_LE(peak, 1.0 + 1e-12);
}

TYPED_TEST(ModelContract, CurveStaysFiniteOnFiniteDrive) {
  TypeParam model = Factory<TypeParam>::make();
  const fm::BhCurve curve = fm::run_sweep(model, ts::major_loop(50.0, 1));
  EXPECT_EQ(fc::first_non_finite(curve), curve.size());
}

// ---------------------------------------------------------------------------
// Scenario-level contract: validation rules and result tagging per model.
// ---------------------------------------------------------------------------

namespace {

fc::Scenario ja_scenario(const std::string& name,
                         fc::Frontend frontend = fc::Frontend::kDirect) {
  fc::Scenario s;
  s.name = name;
  s.model = fc::JaSpec{fm::paper_parameters(), ts::paper_config()};
  s.drive = ts::major_loop(25.0, 2);
  s.frontend = frontend;
  return s;
}

fc::Scenario energy_scenario(const std::string& name) {
  fc::Scenario s;
  s.name = name;
  s.model = fc::EnergySpec{fm::energy_reference_parameters()};
  s.drive = ts::major_loop(25.0, 2);
  return s;
}

}  // namespace

TEST(ModelSpecContract, NaNDriveIsRejectedForBothModels) {
  for (auto scenario : {ja_scenario("ja"), energy_scenario("energy")}) {
    std::get<fw::HSweep>(scenario.drive).h[3] = std::nan("");
    const fc::Error error = fc::validate(scenario);
    EXPECT_EQ(error.code, fc::ErrorCode::kInvalidScenario) << scenario.name;
  }
}

TEST(ModelSpecContract, InvalidEnergyParametersRejectedBeforeDispatch) {
  fc::Scenario s = energy_scenario("bad");
  s.energy().params.kappa_max = -1.0;
  EXPECT_EQ(fc::validate(s).code, fc::ErrorCode::kInvalidScenario);
  const fc::ScenarioResult result = fc::run_scenario(s);
  EXPECT_EQ(result.error.code, fc::ErrorCode::kInvalidScenario);
  EXPECT_EQ(result.model, fm::ModelKind::kEnergyBased);
}

TEST(ModelSpecContract, EnergyModelIsDirectFrontendOnly) {
  for (const auto frontend : {fc::Frontend::kSystemC, fc::Frontend::kAms}) {
    fc::Scenario s = energy_scenario("wrong-frontend");
    s.frontend = frontend;
    EXPECT_EQ(fc::validate(s).code, fc::ErrorCode::kInvalidScenario);
  }
  EXPECT_TRUE(fc::validate(energy_scenario("direct")).ok());
}

TEST(ModelSpecContract, EnergyModelRejectsFluxDrive) {
  fc::Scenario s = energy_scenario("flux");
  s.drive = fc::FluxDrive{{0.0, 0.5, 1.0}};
  EXPECT_EQ(fc::validate(s).code, fc::ErrorCode::kInvalidScenario);
}

TEST(ModelSpecContract, DynamicEnergyTermNeedsATimeDrive) {
  fc::Scenario s = energy_scenario("dynamic");
  s.energy().params.tau_dyn = 1e-4;
  EXPECT_EQ(fc::validate(s).code, fc::ErrorCode::kInvalidScenario);

  fc::TimeDrive drive;
  drive.waveform = std::make_shared<fw::Triangular>(10e3, 0.02);
  drive.t0 = 0.0;
  drive.t1 = 0.04;
  drive.n_samples = 2000;
  s.drive = drive;
  EXPECT_TRUE(fc::validate(s).ok());
  const fc::ScenarioResult result = fc::run_scenario(s);
  ASSERT_TRUE(result.ok()) << result.error.message();
  EXPECT_GT(result.energy_stats.dissipated_energy, 0.0);
  // The dynamic term needs per-sample dt, so this scenario must not pack.
  EXPECT_FALSE(fc::BatchRunner::packable(s));
}

TEST(ModelSpecContract, ResultsCarryTheProducingModelTag) {
  const fc::ScenarioResult ja = fc::run_scenario(ja_scenario("ja"));
  ASSERT_TRUE(ja.ok());
  EXPECT_EQ(ja.model, fm::ModelKind::kJilesAtherton);
  EXPECT_GT(ja.stats.samples, 0u);
  EXPECT_EQ(ja.energy_stats.samples, 0u);

  const fc::ScenarioResult energy = fc::run_scenario(energy_scenario("en"));
  ASSERT_TRUE(energy.ok());
  EXPECT_EQ(energy.model, fm::ModelKind::kEnergyBased);
  EXPECT_GT(energy.energy_stats.samples, 0u);
  EXPECT_GT(energy.energy_stats.dissipated_energy, 0.0);
  EXPECT_EQ(energy.stats.samples, 0u);
}

TEST(ModelSpecContract, QuasiStaticEnergySweepIsPackable) {
  EXPECT_TRUE(fc::BatchRunner::packable(energy_scenario("packable")));
}

TEST(ModelSpecContract, SpecSpanOverloadMixesBackends) {
  const std::vector<fc::ModelSpec> specs = {
      fc::JaSpec{fm::paper_parameters(), ts::paper_config()},
      fc::EnergySpec{fm::energy_reference_parameters()},
  };
  const auto scenarios =
      fc::scenarios_for_parameters(specs, ts::major_loop(25.0, 1), "mix/");
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].kind(), fm::ModelKind::kJilesAtherton);
  EXPECT_EQ(scenarios[1].kind(), fm::ModelKind::kEnergyBased);
  EXPECT_EQ(scenarios[0].name, "mix/0");
}

// ---------------------------------------------------------------------------
// Scalar vs SoA parity: the energy batch kernel executes the same inline
// play update as the scalar model, so lanes must match bitwise.
// ---------------------------------------------------------------------------

TEST(EnergyBatchParity, LanesMatchScalarModelsBitwise) {
  std::vector<fm::EnergyBasedParams> lane_params;
  for (int i = 0; i < 5; ++i) {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.kappa_max = 2000.0 + 800.0 * i;
    p.cells = 4 + i;  // ragged cell counts across lanes
    p.pinning_decay = 0.5 * i;
    lane_params.push_back(p);
  }

  fm::EnergyBasedBatch batch;
  std::vector<fw::HSweep> sweeps;
  std::vector<const fw::HSweep*> sweep_ptrs;
  for (std::size_t i = 0; i < lane_params.size(); ++i) {
    batch.add_lane(lane_params[i]);
    // Ragged lengths: lane i sweeps a different amplitude and count.
    sweeps.push_back(
        fw::SweepBuilder(20.0).cycles(6e3 + 1e3 * i, 1 + (i % 2)).build());
  }
  for (const auto& s : sweeps) sweep_ptrs.push_back(&s);

  std::vector<fm::BhCurve> curves;
  batch.run(sweep_ptrs, curves);
  ASSERT_EQ(curves.size(), lane_params.size());

  for (std::size_t i = 0; i < lane_params.size(); ++i) {
    fm::EnergyBased scalar(lane_params[i]);
    const fm::BhCurve reference = fm::run_sweep(scalar, sweeps[i]);
    expect_bitwise_equal(curves[i], reference);
    EXPECT_EQ(batch.stats(i).samples, scalar.stats().samples);
    EXPECT_EQ(batch.stats(i).cell_updates, scalar.stats().cell_updates);
    EXPECT_EQ(batch.stats(i).pinned_samples, scalar.stats().pinned_samples);
    EXPECT_EQ(batch.stats(i).dissipated_energy,
              scalar.stats().dissipated_energy);
    EXPECT_EQ(batch.magnetisation(i), scalar.magnetisation());
    EXPECT_EQ(batch.flux_density(i), scalar.flux_density());
  }
}

TEST(EnergyBatchParity, SupportsGatesOnTheDynamicTerm) {
  EXPECT_TRUE(fm::EnergyBasedBatch::supports(fm::energy_reference_parameters()));
  fm::EnergyBasedParams dynamic = fm::energy_reference_parameters();
  dynamic.tau_dyn = 1e-5;
  EXPECT_FALSE(fm::EnergyBasedBatch::supports(dynamic));
}

// ---------------------------------------------------------------------------
// Mixed-batch bitwise identity: run vs packed run vs packed streaming, per
// thread count. This is the acceptance property of the model contract —
// lane grouping by model must not perturb a single bit of any result.
// ---------------------------------------------------------------------------

namespace {

std::vector<fc::Scenario> mixed_workload() {
  std::vector<fc::Scenario> scenarios;
  // All three JA frontends (the kAms lane replays a planner trace)...
  for (const auto frontend : {fc::Frontend::kDirect, fc::Frontend::kSystemC,
                              fc::Frontend::kAms}) {
    fc::Scenario s = ja_scenario(std::string("ja/") +
                                     std::string(fc::to_string(frontend)),
                                 frontend);
    scenarios.push_back(std::move(s));
  }
  // ...interleaved with energy jobs of varying distributions...
  for (int i = 0; i < 3; ++i) {
    fc::Scenario s = energy_scenario("energy/" + std::to_string(i));
    s.energy().params.kappa_max = 2500.0 + 1000.0 * i;
    s.energy().params.cells = 6 + 2 * i;
    scenarios.insert(scenarios.begin() + 1 + i, std::move(s));
  }
  // ...plus one invalid straggler of each model, so error paths keep their
  // slots through every pipeline.
  fc::Scenario bad_ja = ja_scenario("bad/ja");
  bad_ja.ja().config.dhmax = -1.0;
  scenarios.push_back(std::move(bad_ja));
  fc::Scenario bad_energy = energy_scenario("bad/energy");
  bad_energy.energy().params.c_rev = 2.0;
  scenarios.push_back(std::move(bad_energy));
  return scenarios;
}

void expect_results_identical(const fc::ScenarioResult& a,
                              const fc::ScenarioResult& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.model, b.model);
  EXPECT_EQ(a.error.code, b.error.code);
  expect_bitwise_equal(a.curve, b.curve);
  EXPECT_EQ(a.metrics.b_peak, b.metrics.b_peak);
  EXPECT_EQ(a.metrics.remanence, b.metrics.remanence);
  EXPECT_EQ(a.metrics.coercivity, b.metrics.coercivity);
  EXPECT_EQ(a.metrics.area, b.metrics.area);
  EXPECT_EQ(a.stats.samples, b.stats.samples);
  EXPECT_EQ(a.stats.field_events, b.stats.field_events);
  EXPECT_EQ(a.stats.integration_steps, b.stats.integration_steps);
  EXPECT_EQ(a.stats.slope_clamps, b.stats.slope_clamps);
  EXPECT_EQ(a.stats.direction_clamps, b.stats.direction_clamps);
  EXPECT_EQ(a.energy_stats.samples, b.energy_stats.samples);
  EXPECT_EQ(a.energy_stats.cell_updates, b.energy_stats.cell_updates);
  EXPECT_EQ(a.energy_stats.pinned_samples, b.energy_stats.pinned_samples);
  EXPECT_EQ(a.energy_stats.dissipated_energy,
            b.energy_stats.dissipated_energy);
}

}  // namespace

TEST(MixedBatchParity, RunPackedAndStreamedIdenticalAcrossThreadCounts) {
  const std::vector<fc::Scenario> scenarios = mixed_workload();

  // The serial per-scenario path is the reference everything must match.
  const fc::BatchRunner serial({.threads = 1});
  const auto reference = serial.run(scenarios);
  ASSERT_EQ(reference.size(), scenarios.size());
  // Sanity: the workload exercises both models and both outcomes.
  EXPECT_TRUE(reference[0].ok());
  EXPECT_FALSE(reference[scenarios.size() - 1].ok());

  for (const unsigned threads : {1u, 2u, 4u}) {
    const fc::BatchRunner runner({.threads = threads});
    const std::string label = "threads=" + std::to_string(threads);

    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});

    fc::CollectingSink collected;
    const auto summary = runner.run(scenarios, collected,
                                    {.packing = fc::Packing::kExact});
    EXPECT_TRUE(summary.ok());
    EXPECT_EQ(summary.delivered, scenarios.size());

    ASSERT_EQ(plain.size(), scenarios.size());
    ASSERT_EQ(packed.size(), scenarios.size());
    ASSERT_EQ(collected.results().size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const std::string where = label + " scenario " + scenarios[i].name;
      expect_results_identical(plain[i], reference[i], where + " [run]");
      expect_results_identical(packed[i], reference[i], where + " [packed]");
      expect_results_identical(collected.results()[i], reference[i],
                               where + " [packed-streaming]");
    }
  }
}

TEST(MixedBatchParity, HomogeneousEnergyBatchPacksAndMatches) {
  // A pure-energy sweep is the new SoA fast path; it must reproduce the
  // per-scenario results bitwise, like the JA packed path always has.
  std::vector<fc::Scenario> scenarios;
  for (int i = 0; i < 9; ++i) {
    fc::Scenario s = energy_scenario("sweep/" + std::to_string(i));
    s.energy().params.kappa_max = 1500.0 + 500.0 * i;
    scenarios.push_back(std::move(s));
  }
  const fc::BatchRunner runner({.threads = 2});
  const auto reference = runner.run(scenarios);
  const auto packed = runner.run(scenarios, {.packing = fc::Packing::kExact});
  // kFast has no approximate energy lane: still bitwise.
  const auto fast = runner.run(scenarios, {.packing = fc::Packing::kFast});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(reference[i].ok()) << reference[i].error.message();
    expect_results_identical(packed[i], reference[i], "packed " + std::to_string(i));
    expect_results_identical(fast[i], reference[i], "fast " + std::to_string(i));
  }
}
