// Unit tests for ferro::wave — waveform shapes, PWL, combinators, sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>

#include "util/constants.hpp"
#include "wave/composite.hpp"
#include "wave/pwl.hpp"
#include "wave/sampler.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fw = ferro::wave;

TEST(StandardWave, ConstantAndRamp) {
  const fw::Constant c(5.0);
  EXPECT_DOUBLE_EQ(c.value(0.0), 5.0);
  EXPECT_DOUBLE_EQ(c.value(123.0), 5.0);
  EXPECT_DOUBLE_EQ(c.derivative(7.0), 0.0);

  const fw::Ramp r(2.0, 1.0);
  EXPECT_DOUBLE_EQ(r.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.value(3.0), 7.0);
  EXPECT_DOUBLE_EQ(r.derivative(100.0), 2.0);
}

TEST(StandardWave, Step) {
  const fw::Step s(0.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(s.value(1.999), 0.0);
  EXPECT_DOUBLE_EQ(s.value(2.0), 1.0);
}

TEST(StandardWave, SineValueAndDerivative) {
  const fw::Sine s(2.0, 50.0);  // 2 A at 50 Hz
  EXPECT_NEAR(s.value(0.0), 0.0, 1e-12);
  EXPECT_NEAR(s.value(0.005), 2.0, 1e-12);  // quarter period
  EXPECT_NEAR(s.derivative(0.0), 2.0 * 2.0 * ferro::util::kPi * 50.0, 1e-9);
}

TEST(StandardWave, SineOffsetPhase) {
  const fw::Sine s(1.0, 1.0, ferro::util::kPi / 2.0, 10.0);
  EXPECT_NEAR(s.value(0.0), 11.0, 1e-12);
}

TEST(StandardWave, DampedSineDecays) {
  const fw::DampedSine d(1.0, 10.0, 0.1);
  const double early = std::fabs(d.value(0.025));
  const double late = std::fabs(d.value(0.925));
  EXPECT_GT(early, late);
  // Numeric vs analytic derivative agreement.
  const double t = 0.0371;
  const double h = 1e-7;
  const double numeric = (d.value(t + h) - d.value(t - h)) / (2.0 * h);
  EXPECT_NEAR(d.derivative(t), numeric, 1e-4);
}

TEST(StandardWave, TriangularShape) {
  const fw::Triangular tri(1.0, 4.0);  // amplitude 1, period 4
  EXPECT_DOUBLE_EQ(tri.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tri.value(1.0), 1.0);   // quarter period: +A
  EXPECT_DOUBLE_EQ(tri.value(2.0), 0.0);   // half period: 0
  EXPECT_DOUBLE_EQ(tri.value(3.0), -1.0);  // three quarters: -A
  EXPECT_DOUBLE_EQ(tri.value(4.0), 0.0);
  EXPECT_DOUBLE_EQ(tri.value(5.0), 1.0);   // periodic
  EXPECT_DOUBLE_EQ(tri.derivative(0.5), 1.0);
  EXPECT_DOUBLE_EQ(tri.derivative(1.5), -1.0);
}

TEST(StandardWave, TriangularNegativeTime) {
  const fw::Triangular tri(1.0, 4.0);
  EXPECT_NEAR(tri.value(-1.0), -1.0, 1e-12);  // periodic extension
}

TEST(StandardWave, SawtoothShape) {
  const fw::Sawtooth saw(2.0, 1.0);
  EXPECT_DOUBLE_EQ(saw.value(0.0), -2.0);
  EXPECT_NEAR(saw.value(0.5), 0.0, 1e-12);
  EXPECT_NEAR(saw.value(0.999), 2.0, 1e-2);
  EXPECT_DOUBLE_EQ(saw.derivative(0.3), 4.0);
}

TEST(Pwl, InterpolationAndClamping) {
  const fw::Pwl pwl({{0.0, 0.0}, {1.0, 10.0}, {3.0, -10.0}});
  EXPECT_DOUBLE_EQ(pwl.value(-1.0), 0.0);   // clamp before
  EXPECT_DOUBLE_EQ(pwl.value(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pwl.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(pwl.value(5.0), -10.0);  // clamp after
  EXPECT_DOUBLE_EQ(pwl.derivative(0.5), 10.0);
  EXPECT_DOUBLE_EQ(pwl.derivative(2.0), -10.0);
}

TEST(Pwl, UnsortedInputIsRepaired) {
  const fw::Pwl pwl({{1.0, 10.0}, {0.0, 0.0}});
  EXPECT_DOUBLE_EQ(pwl.value(0.5), 5.0);
}

TEST(Pwl, DuplicateTimesLastWins) {
  const fw::Pwl pwl({{0.0, 0.0}, {1.0, 5.0}, {1.0, 10.0}, {2.0, 10.0}});
  EXPECT_DOUBLE_EQ(pwl.value(1.0), 10.0);
  EXPECT_EQ(pwl.points().size(), 3u);
}

TEST(Pwl, Breakpoints) {
  const fw::Pwl pwl({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  const auto bp = pwl.breakpoints();
  ASSERT_EQ(bp.size(), 3u);
  EXPECT_DOUBLE_EQ(bp[1], 1.0);
}

TEST(Composite, SumAffineProductClip) {
  auto one = std::make_shared<fw::Constant>(1.0);
  auto ramp = std::make_shared<fw::Ramp>(1.0);
  const fw::Sum sum({one, ramp});
  EXPECT_DOUBLE_EQ(sum.value(2.0), 3.0);
  EXPECT_DOUBLE_EQ(sum.derivative(2.0), 1.0);

  const fw::Affine affine(ramp, 3.0, -1.0);
  EXPECT_DOUBLE_EQ(affine.value(2.0), 5.0);
  EXPECT_DOUBLE_EQ(affine.derivative(2.0), 3.0);

  const fw::Product product(ramp, ramp);  // t^2
  EXPECT_DOUBLE_EQ(product.value(3.0), 9.0);
  EXPECT_DOUBLE_EQ(product.derivative(3.0), 6.0);

  const fw::Clip clip(ramp, 0.0, 1.5);
  EXPECT_DOUBLE_EQ(clip.value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(clip.value(2.0), 1.5);
  EXPECT_DOUBLE_EQ(clip.derivative(2.0), 0.0);
  EXPECT_DOUBLE_EQ(clip.derivative(1.0), 1.0);
}

TEST(Sweep, ToSegmentSpacingAndEndpoint) {
  const fw::HSweep sweep = fw::SweepBuilder(10.0).to(35.0).build();
  ASSERT_EQ(sweep.h.size(), 5u);  // 0, 10, 20, 30, 35
  EXPECT_DOUBLE_EQ(sweep.h.front(), 0.0);
  EXPECT_DOUBLE_EQ(sweep.h[1], 10.0);
  EXPECT_DOUBLE_EQ(sweep.h.back(), 35.0);
}

TEST(Sweep, ToIsNoOpForZeroSpan) {
  fw::SweepBuilder b(10.0);
  b.to(0.0);
  const auto sweep = b.build();
  EXPECT_EQ(sweep.h.size(), 1u);
}

TEST(Sweep, CyclesProduceTurningPoints) {
  const fw::HSweep sweep = fw::SweepBuilder(100.0).cycles(1000.0, 2).build();
  // 0 -> +A -> -A -> +A -> -A -> +A: 4 direction flips.
  EXPECT_EQ(sweep.turning_points.size(), 4u);
  EXPECT_DOUBLE_EQ(sweep.h.back(), 1000.0);
}

TEST(Sweep, MinorLoopAroundBias) {
  const fw::HSweep sweep =
      fw::SweepBuilder(10.0).minor_loop(500.0, 100.0, 2).build();
  double max_h = -1e30, min_h = 1e30;
  for (const double h : sweep.h) {
    max_h = std::max(max_h, h);
    min_h = std::min(min_h, h);
  }
  EXPECT_DOUBLE_EQ(max_h, 600.0);
  EXPECT_DOUBLE_EQ(min_h, 0.0);  // builder starts from 0
  EXPECT_DOUBLE_EQ(sweep.h.back(), 600.0);
}

TEST(Sweep, DecayingCyclesVisitEachAmplitude) {
  const fw::HSweep sweep =
      fw::SweepBuilder(50.0).decaying_cycles({1000.0, 500.0}).build();
  double max_h = -1e30, min_h = 1e30;
  for (const double h : sweep.h) {
    max_h = std::max(max_h, h);
    min_h = std::min(min_h, h);
  }
  EXPECT_DOUBLE_EQ(max_h, 1000.0);
  EXPECT_DOUBLE_EQ(min_h, -1000.0);
  // Ends at the top of the smallest cycle.
  EXPECT_DOUBLE_EQ(sweep.h.back(), 500.0);
}

TEST(Sweep, FromWaveform) {
  const fw::Triangular tri(100.0, 1.0);
  const fw::HSweep sweep = fw::sweep_from_waveform(tri, 0.0, 1.0, 101);
  EXPECT_EQ(sweep.h.size(), 101u);
  EXPECT_NEAR(sweep.h[25], 100.0, 1e-9);
  EXPECT_EQ(sweep.turning_points.size(), 2u);
}

TEST(Sweep, FindTurningPointsHandlesPlateaus) {
  const std::vector<double> h = {0.0, 1.0, 1.0, 2.0, 1.0, 0.0, 1.0};
  const auto turns = fw::find_turning_points(h);
  ASSERT_EQ(turns.size(), 2u);
  EXPECT_EQ(turns[0], 3u);  // peak at index 3 (value 2.0)
  EXPECT_EQ(turns[1], 5u);  // valley at index 5 (value 0.0)
}

TEST(Sampler, UniformSamplingAndCsv) {
  const fw::Ramp ramp(2.0);
  const auto samples = fw::sample_uniform(ramp, 0.0, 1.0, 11);
  ASSERT_EQ(samples.size(), 11u);
  EXPECT_DOUBLE_EQ(samples[5].t, 0.5);
  EXPECT_DOUBLE_EQ(samples[5].v, 1.0);

  const std::string path = "test_wave_samples.csv";
  EXPECT_TRUE(fw::write_samples_csv(path, samples));
  std::filesystem::remove(path);
}
