// Tests for the SPICE-like netlist frontend: value suffixes, every card
// type, error reporting with line numbers, and parse-then-simulate runs.
#include <gtest/gtest.h>

#include <cmath>

#include "ckt/engine.hpp"
#include "ckt/netlist_parser.hpp"

namespace fk = ferro::ckt;

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("42"), 42.0);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("1e6"), 1e6);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("2.5e-3"), 2.5e-3);
}

TEST(SpiceValue, ScaleSuffixes) {
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("10u"), 1e-5);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("100n"), 1e-7);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("3p"), 3e-12);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("1t"), 1e12);
}

TEST(SpiceValue, UnitSuffixesIgnored) {
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("10uF"), 1e-5);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("4.7kohm"), 4700.0);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("1.5V"), 1.5);
  EXPECT_DOUBLE_EQ(*fk::parse_spice_value("0.02s"), 0.02);
}

TEST(SpiceValue, Malformed) {
  EXPECT_FALSE(fk::parse_spice_value("").has_value());
  EXPECT_FALSE(fk::parse_spice_value("abc").has_value());
  EXPECT_FALSE(fk::parse_spice_value("1.2.3").has_value());
  EXPECT_FALSE(fk::parse_spice_value("4k7").has_value());
}

TEST(Parser, MinimalDivider) {
  auto result = fk::parse_netlist(R"(
* a comment
V1 in 0 10
R1 in mid 1k
R2 mid 0 1k
.end
)");
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? ""
                                   : result.errors[0].message);
  EXPECT_EQ(result.netlist->device_names.size(), 3u);
  EXPECT_EQ(result.netlist->circuit.node_count(), 2u);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(result.netlist->circuit, x).ok());
  const auto mid = result.netlist->circuit.node("mid");
  EXPECT_NEAR(x[static_cast<std::size_t>(mid)], 5.0, 1e-6);
}

TEST(Parser, SourceKinds) {
  auto result = fk::parse_netlist(R"(
V1 a 0 SIN(0 8 50)
V2 b 0 TRI(10k 0.02)
V3 c 0 PWL(0 0 1m 5 2m 0)
I1 d 0 2m
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.netlist->device_names.size(), 4u);
}

TEST(Parser, TranDirective) {
  auto result = fk::parse_netlist("V1 a 0 1\nR1 a 0 1k\n.tran 10u 5m\n");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.netlist->tran.has_value());
  EXPECT_DOUBLE_EQ(result.netlist->tran->dt_max, 1e-5);
  EXPECT_DOUBLE_EQ(result.netlist->tran->t_end, 5e-3);
}

TEST(Parser, PassivesWithInitialConditions) {
  auto result = fk::parse_netlist(R"(
C1 a 0 1u ic=1.0
L1 b 0 10m ic=0.5
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.netlist->device_names.size(), 2u);
}

TEST(Parser, DiodeAndSwitch) {
  auto result = fk::parse_netlist(R"(
D1 a b is=1e-12 n=1.5
S1 b 0 t=1m
S2 c 0 t=2m opens
)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.netlist->device_names.size(), 3u);
}

TEST(Parser, JaCoreDevices) {
  auto result = fk::parse_netlist(R"(
V1 in 0 SIN(0 8 50)
R1 in out 0.8
Y1 out 0 area=1e-4 path=0.1 turns=100 material=paper-2006 dhmax=5
T1 p 0 s 0 area=1e-4 path=0.1 turns=100 ns=50 material=grain-oriented-si
)");
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? ""
                                   : result.errors[0].message);
  EXPECT_EQ(result.netlist->device_names.size(), 4u);
}

TEST(Parser, MutualInductorCard) {
  auto result = fk::parse_netlist(R"(
V1 p 0 SIN(0 1 50)
K1 p 0 s 0 l1=40m l2=10m k=0.99
R1 s 0 1k
)");
  ASSERT_TRUE(result.ok()) << (result.errors.empty()
                                   ? ""
                                   : result.errors[0].message);
  EXPECT_EQ(result.netlist->device_names.size(), 3u);
}

TEST(Parser, MutualInductorRejectsBadCoupling) {
  auto result = fk::parse_netlist("K1 p 0 s 0 l1=40m l2=10m k=1.5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("coupling"), std::string::npos);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto result = fk::parse_netlist(R"(V1 in 0 10
R1 in out notanumber
Q1 a b c
)");
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(result.errors[0].line, 2u);
  EXPECT_NE(result.errors[0].message.find("R1"), std::string::npos);
  EXPECT_EQ(result.errors[1].line, 3u);
  EXPECT_NE(result.errors[1].message.find("Q1"), std::string::npos);
}

TEST(Parser, RejectsUnknownMaterial) {
  const auto result =
      fk::parse_netlist("Y1 a 0 area=1e-4 path=0.1 turns=100 material=nope\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("unknown material"),
            std::string::npos);
}

TEST(Parser, RejectsMissingCoreGeometry) {
  auto result = fk::parse_netlist("Y1 a 0 area=1e-4 turns=100\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("path"), std::string::npos);
}

TEST(Parser, RejectsBadSin) {
  auto result = fk::parse_netlist("V1 a 0 SIN(1 2)\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.errors[0].message.find("SIN"), std::string::npos);
}

TEST(Parser, ParseThenSimulateRcStep) {
  auto result = fk::parse_netlist(R"(
* RC charging deck
V1 in 0 PWL(0 0 1u 1 1 1)
R1 in out 1k
C1 out 0 1u ic=0
.tran 20u 5m
)");
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.netlist->tran.has_value());

  fk::TransientOptions options;
  options.t_end = result.netlist->tran->t_end;
  options.dt_max = result.netlist->tran->dt_max;
  options.dt_initial = 1e-6;

  const auto out = result.netlist->circuit.node("out");
  double v_end = 0.0;
  ASSERT_TRUE(fk::run_transient(result.netlist->circuit, options,
                            [&](const fk::Solution& sol) {
                              v_end = sol.v(out);
                            }).ok());
  EXPECT_NEAR(v_end, 1.0 - std::exp(-5.0), 2e-2);
}

TEST(Parser, ParseThenSimulateJaInductor) {
  auto result = fk::parse_netlist(R"(
V1 in 0 SIN(0 7 50)
R1 in out 1
Y1 out 0 area=1e-4 path=0.1 turns=100 material=paper-2006 dhmax=5
.tran 20u 20m
)");
  ASSERT_TRUE(result.ok());
  fk::TransientOptions options;
  options.t_end = result.netlist->tran->t_end;
  options.dt_max = result.netlist->tran->dt_max;
  options.dt_initial = 1e-6;

  double peak_i = 0.0;
  ASSERT_TRUE(fk::run_transient(result.netlist->circuit, options,
                            [&](const fk::Solution& sol) {
                              peak_i = std::max(peak_i,
                                                std::fabs(sol.branch_current(1)));
                            }).ok());
  EXPECT_GT(peak_i, 0.5);  // the core draws real magnetising current
}
