// Cross-cutting integration tests: VCD output from the SystemC frontend,
// kernel edge cases, pulse sources inside the circuit engine, and the
// measurement toolbox applied to simulated circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>

#include "analysis/measure.hpp"
#include "ckt/diode.hpp"
#include "ckt/engine.hpp"
#include "ckt/netlist.hpp"
#include "ckt/rlc.hpp"
#include "ckt/sources.hpp"
#include "core/systemc_ja.hpp"
#include "hdl/kernel.hpp"
#include "hdl/signal.hpp"
#include "wave/pulse.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fh = ferro::hdl;
namespace fk = ferro::ckt;
namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;

TEST(VcdIntegration, SystemCSweepWritesViewableTrace) {
  const std::string path = "test_systemc_trace.vcd";
  const fw::HSweep sweep = fw::SweepBuilder(100.0).cycles(5e3, 1).build();
  const auto result = fc::run_systemc_sweep(fm::paper_parameters(), 25.0,
                                            sweep, fh::SimTime{}, path);
  ASSERT_GT(result.curve.size(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("$var real 64 ! H $end"), std::string::npos);
  EXPECT_NE(text.find("Msig"), std::string::npos);
  EXPECT_NE(text.find("Bsig"), std::string::npos);
  // One frame per sample.
  std::size_t frames = 0;
  for (std::size_t pos = 0; (pos = text.find("\n#", pos)) != std::string::npos;
       ++pos) {
    ++frames;
  }
  EXPECT_EQ(frames, sweep.h.size());
  std::filesystem::remove(path);
}

TEST(KernelEdges, ScheduleInThePastFiresImmediately) {
  fh::Kernel kernel;
  kernel.run_until(fh::SimTime::ns(100));
  bool fired = false;
  kernel.schedule_at(fh::SimTime::ns(10), [&] { fired = true; });  // past
  kernel.run_until(fh::SimTime::ns(101));
  EXPECT_TRUE(fired);
}

TEST(KernelEdges, MultipleListenersAllWake) {
  fh::Kernel kernel;
  fh::Signal<int> sig(kernel, "s", 0);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    const auto pid = kernel.register_process("p" + std::to_string(i),
                                             [&] { ++woken; });
    kernel.make_sensitive(pid, sig);
  }
  const auto writer = kernel.register_process("w", [&] { sig.write(1); });
  kernel.trigger(writer);
  kernel.settle();
  EXPECT_EQ(woken, 5);
}

TEST(KernelEdges, ProcessNamesAreQueryable) {
  fh::Kernel kernel;
  const auto pid = kernel.register_process("my.proc", [] {});
  EXPECT_EQ(kernel.process_name(pid), "my.proc");
}

TEST(KernelEdges, DoubleTriggerRunsOnce) {
  fh::Kernel kernel;
  int runs = 0;
  const auto pid = kernel.register_process("p", [&] { ++runs; });
  kernel.trigger(pid);
  kernel.trigger(pid);  // dedup while queued
  kernel.settle();
  EXPECT_EQ(runs, 1);
}

TEST(PulseInCircuit, BreakpointsMakeCornersExact) {
  // An RC driven by a PULSE: with source breakpoints the response peak
  // lands on the analytic value.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto pulse = std::make_shared<fw::Pulse>(0.0, 1.0, 1e-3, 1e-5, 1e-5, 2e-3,
                                           10e-3);
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, pulse);
  ckt.add<fk::Resistor>("R", in, out, 1000.0);
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-7, 0.0);  // tau 0.1 ms

  fk::TransientOptions options;
  options.t_end = 5e-3;
  options.dt_initial = 1e-6;
  options.dt_max = 1e-5;

  fa::Trace v_out;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    v_out.append(sol.t, sol.v(out));
  }).ok());
  // The pulse is ~20 tau wide: the capacitor fully charges.
  EXPECT_NEAR(fa::peak(v_out, 0.0, 5e-3), 1.0, 5e-3);
  // And fully discharges after the pulse ends at 3.02 ms.
  EXPECT_NEAR(v_out.v.back(), 0.0, 5e-3);
  // Before the delay nothing happens.
  EXPECT_NEAR(fa::peak(v_out, 0.0, 0.9e-3), 0.0, 1e-9);
}

TEST(MeasureInCircuit, RectifierThdAndAverage) {
  // Half-wave rectifier: the output across the load is strongly distorted;
  // the measurement toolbox quantifies it from the recorded transient.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                             std::make_shared<fw::Sine>(5.0, 50.0));
  ckt.add<fk::Diode>("D", in, out);
  ckt.add<fk::Resistor>("R", out, fk::kGround, 100.0);

  fk::TransientOptions options;
  options.t_end = 0.08;
  options.dt_initial = 1e-6;
  options.dt_max = 5e-5;

  fa::Trace v_out;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    v_out.append(sol.t, sol.v(out));
  }).ok());

  // Positive average (rectified), ideal half-wave mean = Vp/pi with the
  // diode drop knocked off.
  const double avg = fa::average(v_out, 0.04, 0.08);
  EXPECT_GT(avg, 0.8);
  EXPECT_LT(avg, 5.0 / 3.14159);

  // Strong harmonic content: half-wave THD is ~0.44 ideal; diode knee adds
  // more. Anything far above the pure-sine level proves the measurement.
  const double distortion = fa::thd(v_out, 0.04, 0.02, 2);
  EXPECT_GT(distortion, 0.3);

  // Peak below the source peak by about one diode drop.
  const double pk = fa::peak(v_out, 0.04, 0.08);
  EXPECT_GT(pk, 3.8);
  EXPECT_LT(pk, 4.7);
}

TEST(MeasureInCircuit, RlRiseTime) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<fk::VoltageSource>(
      "V", in, fk::kGround,
      std::make_shared<fw::Pulse>(0.0, 1.0, 1e-4, 1e-6, 1e-6, 50e-3, 100e-3));
  ckt.add<fk::Resistor>("R", in, mid, 10.0);
  ckt.add<fk::Inductor>("L", mid, fk::kGround, 10e-3, 0.0);  // tau = 1 ms

  fk::TransientOptions options;
  options.t_end = 10e-3;
  options.dt_initial = 1e-6;
  options.dt_max = 1e-5;

  fa::Trace i_l;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    i_l.append(sol.t, sol.branch_current(1));
  }).ok());
  // First-order rise time = tau * ln(9) ~ 2.197 ms.
  const double tr = fa::rise_time(i_l, 0.1);
  EXPECT_NEAR(tr, 2.197e-3, 0.1e-3);
}
