// Tests for the analysis module on synthetic curves with known answers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "analysis/stability.hpp"
#include "mag/bh.hpp"
#include "util/constants.hpp"

namespace fa = ferro::analysis;
namespace fm = ferro::mag;

namespace {

/// Ellipse loop: h = H0 cos(theta), b = B0 sin(theta); area = pi*H0*B0,
/// remanence B0, coercivity H0.
fm::BhCurve ellipse(double h0, double b0, std::size_t n = 720,
                    bool clockwise = false) {
  fm::BhCurve curve;
  for (std::size_t i = 0; i <= n; ++i) {
    const double theta = 2.0 * ferro::util::kPi * static_cast<double>(i) /
                         static_cast<double>(n) * (clockwise ? -1.0 : 1.0);
    curve.append(h0 * std::cos(theta), 0.0, b0 * std::sin(theta));
  }
  return curve;
}

}  // namespace

TEST(EnclosedArea, EllipseMatchesAnalytic) {
  const fm::BhCurve curve = ellipse(100.0, 2.0);
  const double area =
      fa::enclosed_area(curve.h_values(), curve.b_values());
  EXPECT_NEAR(std::fabs(area), ferro::util::kPi * 100.0 * 2.0, 1.0);
}

TEST(EnclosedArea, OrientationFlipsSign) {
  const fm::BhCurve ccw = ellipse(10.0, 1.0);
  const fm::BhCurve cw = ellipse(10.0, 1.0, 720, true);
  const double a1 = fa::enclosed_area(ccw.h_values(), ccw.b_values());
  const double a2 = fa::enclosed_area(cw.h_values(), cw.b_values());
  EXPECT_NEAR(a1, -a2, 1e-9);
}

TEST(EnclosedArea, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(fa::enclosed_area(std::vector<double>{},
                                     std::vector<double>{}),
                   0.0);
  EXPECT_DOUBLE_EQ(fa::enclosed_area(std::vector<double>{1.0, 2.0},
                                     std::vector<double>{1.0, 2.0}),
                   0.0);
}

TEST(ValuesAtZero, LinearCrossing) {
  const std::vector<double> x = {-1.0, 1.0};
  const std::vector<double> y = {10.0, 20.0};
  const auto vals = fa::values_at_zero_of(x, y);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 15.0);
}

TEST(ValuesAtZero, ExactZeroSample) {
  const std::vector<double> x = {-1.0, 0.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  const auto vals = fa::values_at_zero_of(x, y);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 2.0);
}

TEST(ValuesAtZero, NoCrossing) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_TRUE(fa::values_at_zero_of(x, y).empty());
}

TEST(AnalyzeLoop, EllipseMetrics) {
  const fm::BhCurve curve = ellipse(100.0, 2.0);
  const fa::LoopMetrics metrics = fa::analyze_loop(curve);
  EXPECT_NEAR(metrics.h_peak, 100.0, 1e-9);
  EXPECT_NEAR(metrics.b_peak, 2.0, 1e-3);
  EXPECT_NEAR(metrics.remanence, 2.0, 1e-3);
  EXPECT_NEAR(metrics.coercivity, 100.0, 0.1);
  EXPECT_NEAR(metrics.area, ferro::util::kPi * 200.0, 1.0);
  EXPECT_EQ(metrics.points, curve.size());
}

TEST(AnalyzeLoop, SubrangeAndDegenerate) {
  const fm::BhCurve curve = ellipse(1.0, 1.0, 8);
  const fa::LoopMetrics all = fa::analyze_loop(curve);
  EXPECT_GT(all.area, 0.0);
  const fa::LoopMetrics none = fa::analyze_loop(curve, 5, 2);  // begin > end
  EXPECT_EQ(none.points, 0u);
  const fa::LoopMetrics oob = fa::analyze_loop(curve, 0, curve.size());
  EXPECT_EQ(oob.points, 0u);
}

TEST(MonotoneBranches, TriangleSweep) {
  fm::BhCurve curve;
  for (const double h : {0.0, 1.0, 2.0, 1.0, 0.0, -1.0, 0.0, 1.0}) {
    curve.append(h, 0.0, h);
  }
  const auto branches = fa::monotone_branches(curve);
  ASSERT_EQ(branches.size(), 3u);
  EXPECT_EQ(branches[0].first, 0u);
  EXPECT_EQ(branches[0].second, 2u);
  EXPECT_EQ(branches[1].first, 2u);
  EXPECT_EQ(branches[1].second, 5u);
  EXPECT_EQ(branches[2].first, 5u);
  EXPECT_EQ(branches[2].second, 7u);
}

TEST(ClosureError, ExactAndMismatch) {
  fm::BhCurve curve;
  curve.append(0.0, 0.0, 1.0);
  curve.append(1.0, 0.0, 2.0);
  curve.append(0.0, 0.0, 1.25);
  EXPECT_DOUBLE_EQ(fa::closure_error(curve, 0, 2), 0.25);
  EXPECT_DOUBLE_EQ(fa::closure_error(curve, 0, 0), 0.0);
}

TEST(ScanSlopes, DetectsNegativeSegment) {
  fm::BhCurve curve;
  curve.append(0.0, 0.0, 0.0);
  curve.append(1.0, 0.0, 1.0);   // +1 slope
  curve.append(2.0, 0.0, 0.5);   // -0.5 slope  <- negative
  curve.append(3.0, 0.0, 1.5);   // +1 slope
  const fa::SlopeReport report = fa::scan_slopes(curve);
  EXPECT_EQ(report.segments, 3u);
  EXPECT_EQ(report.negative_segments, 1u);
  EXPECT_NEAR(report.most_negative, -0.5, 1e-12);
}

TEST(ScanSlopes, FallingBranchIsNotNegativeSlope) {
  // B falling while H falls is a *positive* dB/dH.
  fm::BhCurve curve;
  curve.append(2.0, 0.0, 2.0);
  curve.append(1.0, 0.0, 1.0);
  curve.append(0.0, 0.0, 0.0);
  const fa::SlopeReport report = fa::scan_slopes(curve);
  EXPECT_EQ(report.negative_segments, 0u);
}

TEST(ScanSlopes, IgnoresTinyFieldMoves) {
  fm::BhCurve curve;
  curve.append(0.0, 0.0, 0.0);
  curve.append(1e-12, 0.0, -5.0);  // below min_dh
  const fa::SlopeReport report = fa::scan_slopes(curve);
  EXPECT_EQ(report.segments, 0u);
  EXPECT_EQ(report.negative_segments, 0u);
}

TEST(CompareCurves, PointwiseIdenticalAndShifted) {
  const fm::BhCurve a = ellipse(10.0, 1.0, 100);
  const fa::CurveDelta zero = fa::compare_pointwise(a, a);
  EXPECT_DOUBLE_EQ(zero.rms_b, 0.0);
  EXPECT_DOUBLE_EQ(zero.max_b, 0.0);

  fm::BhCurve shifted;
  for (const auto& p : a.points()) shifted.append(p.h, p.m + 1.0, p.b + 0.5);
  const fa::CurveDelta delta = fa::compare_pointwise(a, shifted);
  EXPECT_NEAR(delta.rms_b, 0.5, 1e-12);
  EXPECT_NEAR(delta.max_b, 0.5, 1e-12);
  EXPECT_NEAR(delta.rms_m, 1.0, 1e-12);
}

TEST(CompareCurves, ByArcHandlesDifferentSampling) {
  // Same ellipse sampled at different densities: arc comparison ~0.
  const fm::BhCurve coarse = ellipse(10.0, 1.0, 180);
  const fm::BhCurve fine = ellipse(10.0, 1.0, 1440);
  const fa::CurveDelta delta = fa::compare_by_arc(coarse, fine);
  EXPECT_LT(delta.rms_b, 5e-3);
  EXPECT_LT(delta.max_b, 2e-2);
}

TEST(CompareCurves, ByArcDetectsScaleDifference) {
  const fm::BhCurve unit = ellipse(10.0, 1.0, 360);
  const fm::BhCurve doubled = ellipse(10.0, 2.0, 360);
  const fa::CurveDelta delta = fa::compare_by_arc(unit, doubled);
  EXPECT_GT(delta.max_b, 0.9);
}

TEST(Envelope, MinorInsideMajor) {
  // Major: tall ellipse; minor: concentric small one.
  const fm::BhCurve major = ellipse(100.0, 2.0);
  const fm::BhCurve minor = ellipse(50.0, 0.5);
  EXPECT_TRUE(fa::within_major_envelope(minor, major, 1e-6));
}

TEST(Envelope, EscapingCurveDetected) {
  const fm::BhCurve major = ellipse(100.0, 2.0);
  const fm::BhCurve tall = ellipse(50.0, 3.0);  // sticks out vertically
  EXPECT_FALSE(fa::within_major_envelope(tall, major, 1e-6));
}
