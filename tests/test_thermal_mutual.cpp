// Tests for the temperature extension and the linear coupled inductor.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/loop_metrics.hpp"
#include "ckt/engine.hpp"
#include "ckt/mutual.hpp"
#include "ckt/netlist.hpp"
#include "ckt/rlc.hpp"
#include "ckt/sources.hpp"
#include "core/dc_sweep.hpp"
#include "mag/thermal.hpp"
#include "wave/standard.hpp"
#include "support/fixtures.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fk = ferro::ckt;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;

TEST(Thermal, ReferenceTemperatureIsIdentity) {
  const fm::ThermalModel thermal;
  const fm::JaParameters base = fm::paper_parameters();
  const fm::JaParameters at_ref = thermal.at(base, 293.0);
  EXPECT_DOUBLE_EQ(at_ref.ms, base.ms);
  EXPECT_DOUBLE_EQ(at_ref.a, base.a);
  EXPECT_DOUBLE_EQ(at_ref.k, base.k);
}

TEST(Thermal, MsFallsMonotonicallyTowardCurie) {
  const fm::ThermalModel thermal;
  double prev = 2.0;
  for (double t = 293.0; t < 1043.0; t += 50.0) {
    const double ratio = thermal.ms_ratio(t);
    EXPECT_LT(ratio, prev) << "T=" << t;
    EXPECT_GT(ratio, 0.0);
    prev = ratio;
  }
}

TEST(Thermal, AboveCurieIsParamagneticFloor) {
  const fm::ThermalModel thermal;
  EXPECT_DOUBLE_EQ(thermal.ms_ratio(1100.0), 1e-6);
  const fm::JaParameters hot = thermal.at(fm::paper_parameters(), 1200.0);
  EXPECT_TRUE(hot.is_valid());
  EXPECT_LT(hot.ms, 10.0);  // essentially nonmagnetic
}

TEST(Thermal, CriticalExponentShape) {
  // Halfway to Curie in reduced temperature: ratio = 0.5^0.36.
  fm::ThermalModel thermal;
  thermal.reference_temperature = 0.0;
  thermal.curie_temperature = 1000.0;
  EXPECT_NEAR(thermal.ms_ratio(500.0), std::pow(0.5, 0.36), 1e-12);
}

TEST(Thermal, PinningFadesFasterThanMs) {
  const fm::ThermalModel thermal;
  const fm::JaParameters base = fm::paper_parameters();
  const fm::JaParameters warm = thermal.at(base, 800.0);
  const double ms_ratio = warm.ms / base.ms;
  const double k_ratio = warm.k / base.k;
  EXPECT_LT(k_ratio, ms_ratio);  // beta_k = 2 > beta_ms exponent chain
}

TEST(Thermal, HotLoopIsSmallerAndSofter) {
  const fm::ThermalModel thermal;
  const fm::JaParameters base = fm::paper_parameters();

  const auto loop_at = [&](double t_kelvin) {
    const fm::JaParameters p = thermal.at(base, t_kelvin);
    fm::TimelessConfig cfg;
    cfg.dhmax = (p.a + p.k) / 600.0;
    const fw::HSweep sweep = ferro::testsupport::major_loop(10.0, 2);
    const auto result = fc::run_dc_sweep(p, cfg, sweep);
    const std::size_t n = result.curve.size();
    return fa::analyze_loop(result.curve, n / 2, n - 1);
  };

  const fa::LoopMetrics cold = loop_at(293.0);
  const fa::LoopMetrics hot = loop_at(900.0);
  EXPECT_LT(hot.b_peak, cold.b_peak);
  EXPECT_LT(hot.coercivity, cold.coercivity);
  EXPECT_LT(hot.area, cold.area);  // core loss falls with temperature
}

TEST(Thermal, ValidParametersAcrossRange) {
  const fm::ThermalModel thermal;
  for (const auto& material : fm::material_library()) {
    for (double t = 100.0; t <= 1400.0; t += 100.0) {
      const fm::JaParameters p = thermal.at(material.params, t);
      EXPECT_TRUE(p.is_valid()) << material.name << " at T=" << t;
    }
  }
}

namespace {

/// Transformer testbench: sine source on the primary, load on the secondary.
struct MutualBench {
  fk::Circuit circuit;
  fk::NodeId p, s;
  fk::MutualInductor* mutual = nullptr;

  MutualBench(double l1, double l2, double k, double r_load) {
    p = circuit.node("p");
    s = circuit.node("s");
    circuit.add<fk::VoltageSource>("V", p, fk::kGround,
                                   std::make_shared<fw::Sine>(1.0, 50.0));
    mutual = &circuit.add<fk::MutualInductor>("K", p, fk::kGround, s,
                                              fk::kGround, l1, l2, k);
    circuit.add<fk::Resistor>("Rload", s, fk::kGround, r_load);
  }
};

}  // namespace

TEST(MutualInductor, VoltageRatioFollowsSqrtInductanceRatio) {
  // With near-unity coupling and a light load: vs/vp = sqrt(L2/L1) = 0.5.
  MutualBench bench(40e-3, 10e-3, 0.999, 10e3);

  fk::TransientOptions options;
  options.t_end = 0.04;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  double vp = 0.0, vs = 0.0;
  ASSERT_TRUE(fk::run_transient(bench.circuit, options,
                            [&](const fk::Solution& sol) {
                              if (sol.t < 0.02) return;
                              vp = std::max(vp, std::fabs(sol.v(bench.p)));
                              vs = std::max(vs, std::fabs(sol.v(bench.s)));
                            }).ok());
  EXPECT_NEAR(vs / vp, 0.5, 0.03);
}

TEST(MutualInductor, ZeroCouplingIsolatesSecondary) {
  MutualBench bench(40e-3, 10e-3, 0.0, 1e3);

  fk::TransientOptions options;
  options.t_end = 0.02;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  double vs = 0.0;
  ASSERT_TRUE(fk::run_transient(bench.circuit, options,
                            [&](const fk::Solution& sol) {
                              vs = std::max(vs, std::fabs(sol.v(bench.s)));
                            }).ok());
  EXPECT_LT(vs, 1e-6);
}

TEST(MutualInductor, DcIsQuasiShort) {
  fk::Circuit circuit;
  const auto p = circuit.node("p");
  const auto s = circuit.node("s");
  circuit.add<fk::VoltageSource>("V", p, fk::kGround, 1.0);
  circuit.add<fk::MutualInductor>("K", p, fk::kGround, s, fk::kGround, 10e-3,
                                  10e-3, 0.9);
  circuit.add<fk::Resistor>("R", s, fk::kGround, 100.0);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(circuit, x).ok());
  EXPECT_NEAR(x[static_cast<std::size_t>(s)], 0.0, 1e-3);
}

TEST(MutualInductor, EnergyFlowsToLoad) {
  // Loading the secondary must increase the primary current draw.
  const auto peak_ip = [&](double r_load) {
    MutualBench bench(40e-3, 10e-3, 0.99, r_load);
    fk::TransientOptions options;
    options.t_end = 0.04;
    options.dt_initial = 1e-6;
    options.dt_max = 2e-5;
    double peak = 0.0;
    EXPECT_TRUE(fk::run_transient(bench.circuit, options,
                              [&](const fk::Solution& sol) {
                                if (sol.t > 0.02) {
                                  peak = std::max(
                                      peak, std::fabs(sol.branch_current(1)));
                                }
                              }).ok());
    return peak;
  };
  EXPECT_GT(peak_ip(1.0), 2.0 * peak_ip(10e3));
}
