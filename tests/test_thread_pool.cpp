// ThreadPool: exact coverage of the index space, serial degeneration,
// reuse across batches, and stress with many tiny chunks — the contracts
// BatchRunner's determinism guarantees are built on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/thread_pool.hpp"

namespace fc = ferro::core;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    fc::ThreadPool pool(workers);
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                      std::size_t{64}, std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, chunk, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "workers=" << workers << " n=" << n << " chunk=" << chunk
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, ZeroJobsIsANoOp) {
  fc::ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerSpawnsNoThreadsAndRunsInline) {
  fc::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(5, 2, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) seen.push_back(caller);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(seen.size(), 5u);
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  // The persistent-pool property: one construction, many dispatches.
  fc::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.parallel_for(97, 5, [&](std::size_t begin, std::size_t end) {
      std::int64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        local += static_cast<std::int64_t>(i);
      }
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200 * (96 * 97 / 2));
}

TEST(ThreadPool, ManyTinyJobsStress) {
  // 20k near-empty jobs across repeated batches: the chunked dispatch keeps
  // deque traffic bounded and every index still runs exactly once.
  fc::ThreadPool pool(8);
  constexpr std::size_t kJobs = 20000;
  std::vector<std::atomic<int>> hits(kJobs);
  const std::size_t chunk = fc::ThreadPool::default_chunk(kJobs, pool.workers());
  EXPECT_GE(chunk, kJobs / (8 * 4));
  pool.parallel_for(kJobs, chunk, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  const int sum = std::accumulate(
      hits.begin(), hits.end(), 0,
      [](int acc, const std::atomic<int>& h) { return acc + h.load(); });
  EXPECT_EQ(sum, static_cast<int>(kJobs));
}

TEST(ThreadPool, StoppableOverloadKeepsCoverageExact) {
  // The cancellation contract: the stop query flips what fn is TOLD, never
  // which ranges fn receives — [0, n) stays exactly covered so the caller
  // can emit cancellation markers for every skipped index.
  for (const unsigned workers : {1u, 4u}) {
    fc::ThreadPool pool(workers);
    constexpr std::size_t kJobs = 500;
    std::atomic<bool> stop_now{false};
    std::vector<std::atomic<int>> hits(kJobs);
    std::atomic<std::size_t> stopped_indices{0};
    pool.parallel_for(
        kJobs, 1,
        [&](std::size_t begin, std::size_t end, bool stopped) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            if (stopped) stopped_indices.fetch_add(1);
          }
          // Trip the latch partway through the batch.
          if (begin == kJobs / 4) stop_now.store(true);
        },
        [&] { return stop_now.load(); });
    for (std::size_t i = 0; i < kJobs; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
    // How many chunks observed the trip is scheduling-dependent (the serial
    // fast path is a single pre-trip call); the invariant is coverage.
    EXPECT_LE(stopped_indices.load(), kJobs);
  }
}

TEST(ThreadPool, StoppableOverloadWithEmptyQueryNeverStops) {
  fc::ThreadPool pool(4);
  std::atomic<std::size_t> stopped{0};
  pool.parallel_for(
      100, 1,
      [&](std::size_t, std::size_t, bool is_stopped) {
        if (is_stopped) stopped.fetch_add(1);
      },
      fc::ThreadPool::StopQuery{});
  EXPECT_EQ(stopped.load(), 0u);
}

TEST(ThreadPool, DefaultChunkScalesWithWorkload) {
  EXPECT_EQ(fc::ThreadPool::default_chunk(0, 4), 1u);
  EXPECT_EQ(fc::ThreadPool::default_chunk(15, 4), 1u);
  EXPECT_EQ(fc::ThreadPool::default_chunk(160, 4), 10u);
  EXPECT_GE(fc::ThreadPool::default_chunk(1000000, 1), 100000u);
}

TEST(ThreadPool, DefaultChunkRoundsUpToTheRequestedMultiple) {
  // The SIMD-aware overload: never below the plain heuristic, always a
  // multiple of the vector width, and already-aligned sizes are unchanged.
  for (const std::size_t n : {0u, 15u, 160u, 1000u, 4097u}) {
    for (const unsigned workers : {1u, 3u, 4u, 16u}) {
      const std::size_t base = fc::ThreadPool::default_chunk(n, workers);
      for (const std::size_t multiple : {1u, 2u, 4u, 8u}) {
        const std::size_t chunk =
            fc::ThreadPool::default_chunk(n, workers, multiple);
        EXPECT_GE(chunk, base);
        EXPECT_LT(chunk, base + multiple);
        EXPECT_EQ(chunk % multiple, 0u);
      }
    }
  }
  EXPECT_EQ(fc::ThreadPool::default_chunk(160, 4, 8), 16u);
  // multiple = 0 is treated as 1 rather than dividing by zero.
  EXPECT_EQ(fc::ThreadPool::default_chunk(160, 4, 0), 10u);
}
