// Tests for AC demagnetisation: the decaying-reversal stress test.
//
// Expectations follow the model's real behaviour (see core/demag.hpp):
// soft materials demagnetise essentially completely; hard square-loop
// materials only partially (remanent equilibria of the alpha coupling).
#include <gtest/gtest.h>

#include <cmath>

#include "core/demag.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fc = ferro::core;
namespace fw = ferro::wave;

namespace {

fm::TimelessJa saturated_model(const fm::JaParameters& params,
                               double amplitude) {
  fm::TimelessConfig cfg;
  cfg.dhmax = (params.a + params.k) / 600.0;
  fm::TimelessJa ja(params, cfg);
  const fw::HSweep sat =
      fw::SweepBuilder(amplitude / 2000.0).to(amplitude).to(0.0).build();
  for (const double h : sat.h) ja.apply(h);
  return ja;
}

fc::DemagConfig config_for(double amplitude) {
  fc::DemagConfig config;
  config.start_amplitude = amplitude;
  config.stop_amplitude = amplitude / 1000.0;
  config.sample_step = amplitude / 2000.0;
  return config;
}

}  // namespace

TEST(Demag, SoftMaterialCollapsesCompletely) {
  const fm::JaParameters params =
      fm::find_material("grain-oriented-si")->params;
  const double amp = 5.0 * (params.a + params.k);
  fm::TimelessJa ja = saturated_model(params, amp);
  const double m_before = std::fabs(ja.magnetisation());
  ASSERT_GT(m_before, 0.3 * params.ms);  // genuinely remanent

  const fc::DemagResult result = fc::demagnetise(ja, config_for(amp));
  EXPECT_LT(result.residual_m, 0.05 * params.ms);
  EXPECT_LT(result.residual_m, m_before / 10.0);
  EXPECT_GT(result.cycles, 20);
}

TEST(Demag, HardMaterialReducesButRetains) {
  const fm::JaParameters params = fm::paper_parameters();
  fm::TimelessJa ja = saturated_model(params, 10e3);
  const double m_before = std::fabs(ja.magnetisation());

  const fc::DemagResult result = fc::demagnetise(ja, config_for(10e3));
  // Partial demagnetisation: a real reduction, but a substantial remanent
  // equilibrium survives (the documented JA hard-material behaviour).
  EXPECT_LT(result.residual_m, m_before);
  EXPECT_GT(result.residual_m, 0.1 * params.ms);
}

TEST(Demag, TrajectoryIsBoundedAndFinite) {
  fm::TimelessJa ja = saturated_model(fm::paper_parameters(), 10e3);
  const fc::DemagResult result = fc::demagnetise(ja, config_for(10e3));
  for (const auto& p : result.curve.points()) {
    ASSERT_TRUE(std::isfinite(p.b));
    ASSERT_LE(std::fabs(p.m), fm::paper_parameters().ms * (1.0 + 1e-9));
  }
}

TEST(Demag, EndsAtZeroField) {
  fm::TimelessJa ja = saturated_model(fm::paper_parameters(), 10e3);
  (void)fc::demagnetise(ja, config_for(10e3));
  EXPECT_DOUBLE_EQ(ja.state().present_h, 0.0);
}

TEST(Demag, Deterministic) {
  fm::TimelessJa a = saturated_model(fm::paper_parameters(), 10e3);
  fm::TimelessJa b = saturated_model(fm::paper_parameters(), 10e3);
  const double ra = fc::demagnetise(a, config_for(10e3)).residual_m;
  const double rb = fc::demagnetise(b, config_for(10e3)).residual_m;
  EXPECT_DOUBLE_EQ(ra, rb);
}

TEST(Demag, NoNumericalFailuresAcrossMaterials) {
  // The paper's robustness claim under the hardest excitation we have:
  // hundreds of shrinking reversals — always finite, always bounded.
  for (const auto& material : fm::material_library()) {
    const double amp = 5.0 * (material.params.a + material.params.k);
    fm::TimelessJa ja = saturated_model(material.params, amp);
    const fc::DemagResult result = fc::demagnetise(ja, config_for(amp));
    EXPECT_TRUE(std::isfinite(result.residual_m)) << material.name;
    EXPECT_LE(result.residual_m, material.params.ms) << material.name;
  }
}

TEST(Demag, CouplingOrdersResiduals) {
  // Weaker alpha*Ms/k coupling -> deeper demagnetisation (the
  // effective-field feedback is what sustains remanent equilibria).
  const auto residual_fraction = [&](const char* name) {
    const fm::JaParameters params = fm::find_material(name)->params;
    const double amp = 5.0 * (params.a + params.k);
    fm::TimelessJa ja = saturated_model(params, amp);
    return fc::demagnetise(ja, config_for(amp)).residual_m / params.ms;
  };
  // soft-ferrite coupling ratio ~1.1, but tiny relative coercivity; the
  // clean orderings are against the paper set (ratio 1.2, large Hc).
  EXPECT_LT(residual_fraction("hard-steel"),
            residual_fraction("paper-2006"));
  EXPECT_LT(residual_fraction("grain-oriented-si"),
            residual_fraction("paper-2006"));
}
