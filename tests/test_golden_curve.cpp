// Golden-curve regression: the committed tests/data/fig1_major_loop.csv was
// generated from the paper-faithful configuration (see
// tests/support/gen_fig1_golden.cpp). Any change to the timeless kernel that
// moves the major loop shows up here as an RMS deviation.
#include <gtest/gtest.h>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "core/dc_sweep.hpp"
#include "mag/ja_params.hpp"
#include "support/fixtures.hpp"
#include "util/csv.hpp"

namespace fm = ferro::mag;
namespace fa = ferro::analysis;
namespace fc = ferro::core;
namespace fu = ferro::util;
namespace ts = ferro::testsupport;

namespace {

fm::BhCurve load_golden() {
  const fu::CsvTable table = fu::read_csv(ts::data_path("fig1_major_loop.csv"));
  fm::BhCurve curve;
  const int ih = table.column_index("h");
  const int im = table.column_index("m");
  const int ib = table.column_index("b");
  EXPECT_GE(ih, 0);
  EXPECT_GE(im, 0);
  EXPECT_GE(ib, 0);
  if (ih < 0 || im < 0 || ib < 0) return curve;
  for (const auto& row : table.rows) {
    curve.append(row[static_cast<std::size_t>(ih)],
                 row[static_cast<std::size_t>(im)],
                 row[static_cast<std::size_t>(ib)]);
  }
  return curve;
}

fm::BhCurve regenerate() {
  return fc::run_dc_sweep(fm::paper_parameters_dual(), ts::paper_config(),
                          ts::major_loop(10.0, 2))
      .curve;
}

}  // namespace

TEST(GoldenCurve, CommittedFileLoads) {
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 1000u)
      << "tests/data/fig1_major_loop.csv missing or truncated — regenerate "
         "with ./build/gen_fig1_golden";
}

TEST(GoldenCurve, TimelessModelReproducesCommittedMajorLoop) {
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 0u);
  const fm::BhCurve live = regenerate();
  ASSERT_EQ(live.size(), golden.size());

  const fa::CurveDelta d = fa::compare_pointwise(live, golden);
  // The only expected deviation is the CSV's 12-significant-digit rounding
  // (~1e-11 T); 1e-6 T still catches any real change to the discretisation.
  EXPECT_LT(d.rms_b, 1e-6);
  EXPECT_LT(d.max_b, 1e-5);
  EXPECT_LT(d.rms_m, 1.0);  // M is O(1e6) A/m; 1 A/m RMS is ~1e-6 relative
}

TEST(GoldenCurve, CommittedCurveMatchesPublishedFigure) {
  // Tie the artefact itself to Fig. 1's published characteristics, so a
  // silently regenerated-but-wrong golden cannot pass.
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 0u);
  const std::size_t n = golden.size();
  const fa::LoopMetrics metrics = fa::analyze_loop(golden, n / 2, n - 1);
  EXPECT_DOUBLE_EQ(metrics.h_peak, 10e3);
  EXPECT_GT(metrics.b_peak, 1.2);
  EXPECT_LT(metrics.b_peak, 2.2);
  EXPECT_GT(metrics.coercivity, 500.0);
  EXPECT_LT(metrics.coercivity, 4000.0);
  EXPECT_GT(metrics.remanence, 0.3);
}
