// core::ShardExecutor — the multi-process supervision tree behind
// RunOptions{.isolation = Isolation::kProcess}.
//
// The always-on tests pin the healthy-path contracts: bitwise parity with
// in-process execution, exactly-once emission, graceful degradation
// (FERRO_SHARD_DISABLE, alien waveforms), and cancellation/deadline drains.
// The crash/stall/corruption recovery tests need real worker deaths, which
// the deterministic fault injector produces (arm kWorkerCrash/kWorkerStall/
// kWireCorrupt with a scenario-name match); they are compile-gated on
// FERRO_FAULT_INJECTION like the rest of the failure-path suite.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/cancel.hpp"
#include "core/error.hpp"
#include "core/fault_injection.hpp"
#include "core/result_sink.hpp"
#include "core/scenario.hpp"
#include "core/shard_executor.hpp"
#include "mag/ja_params.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fc = ferro::core;
namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace ts = ferro::testsupport;

namespace {

/// Homogeneous JA sweep batch. Names are "job#<i>/" — the trailing slash
/// makes "#5/" a unique substring, which is what the fault injector's
/// context match keys on.
std::vector<fc::Scenario> sweep_batch(std::size_t count) {
  const auto& library = fm::material_library();
  std::vector<fc::Scenario> scenarios(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& material = library[i % library.size()];
    const double amp = ts::saturation_amplitude(material.params);
    scenarios[i].name = "job#" + std::to_string(i) + "/" + material.name;
    scenarios[i].ja().params = material.params;
    scenarios[i].ja().config.dhmax = amp / 150.0;
    scenarios[i].drive = fw::SweepBuilder(amp / 200.0).cycles(amp, 1).build();
  }
  return scenarios;
}

bool bitwise_equal(const fc::ScenarioResult& a, const fc::ScenarioResult& b) {
  if (a.curve.size() != b.curve.size()) return false;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    const auto& pa = a.curve.points()[i];
    const auto& pb = b.curve.points()[i];
    if (std::memcmp(&pa, &pb, sizeof(pa)) != 0) return false;
  }
  return a.error.code == b.error.code &&
         std::memcmp(&a.stats, &b.stats, sizeof(a.stats)) == 0;
}

/// Runs the executor and checks the exactly-once emission contract: every
/// index in [0, n) delivered exactly once, in the returned vector.
struct Collected {
  std::vector<fc::ScenarioResult> results;
  fc::ShardStats stats;
};

Collected collect(const fc::ShardExecutor& executor,
                  const std::vector<fc::Scenario>& scenarios,
                  fc::RunGate& gate) {
  Collected out;
  out.results.resize(scenarios.size());
  std::set<std::size_t> seen;
  out.stats = executor.run(
      scenarios,
      [&](std::size_t index, fc::ScenarioResult&& r) {
        ASSERT_LT(index, scenarios.size());
        ASSERT_TRUE(seen.insert(index).second)
            << "index " << index << " delivered twice";
        out.results[index] = std::move(r);
      },
      gate);
  EXPECT_EQ(seen.size(), scenarios.size())
      << "every scenario must be emitted exactly once";
  return out;
}

/// Restores FERRO_SHARD_DISABLE around a test that sets it.
struct ScopedDisable {
  ScopedDisable() { ::setenv("FERRO_SHARD_DISABLE", "1", 1); }
  ~ScopedDisable() { ::unsetenv("FERRO_SHARD_DISABLE"); }
};

class ShardExecutor : public ::testing::Test {
 protected:
  void SetUp() override { fc::FaultInjector::reset(); }
  void TearDown() override { fc::FaultInjector::reset(); }

  /// Fast deterministic retry schedule for the recovery tests: immediate
  /// retries keep them quick, and the fixed seed keeps them reproducible.
  static fc::ShardOptions fast_options(unsigned workers,
                                       std::size_t shard_size) {
    fc::ShardOptions o;
    o.workers = workers;
    o.shard_size = shard_size;
    o.retry = fc::BackoffPolicy{/*max_retries=*/2, /*base_ms=*/0.0,
                                /*cap_ms=*/0.0, /*multiplier=*/1.0,
                                /*decorrelated_jitter=*/false};
    return o;
  }
};

TEST_F(ShardExecutor, EmptyBatchIsANoop) {
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor;
  bool emitted = false;
  const fc::ShardStats stats = executor.run(
      {}, [&](std::size_t, fc::ScenarioResult&&) { emitted = true; }, gate);
  EXPECT_FALSE(emitted);
  EXPECT_EQ(stats.workers_spawned, 0u);
}

TEST_F(ShardExecutor, HealthyBatchIsBitwiseIdenticalToInProcess) {
  const auto scenarios = sweep_batch(24);
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(fast_options(3, 4));
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_GT(got.stats.workers_spawned, 0u);
  EXPECT_FALSE(got.stats.degraded_in_process);
  EXPECT_EQ(got.stats.worker_crashes, 0u);
  EXPECT_EQ(got.stats.poisoned, 0u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const fc::ScenarioResult reference = fc::run_scenario(scenarios[i]);
    ASSERT_TRUE(got.results[i].ok()) << i << ": " << got.results[i].error;
    EXPECT_TRUE(bitwise_equal(got.results[i], reference))
        << "scenario " << i << " differs from the in-process run";
  }
}

TEST_F(ShardExecutor, ResolvedKnobsAreSane) {
  fc::ShardOptions o;
  o.workers = 8;
  const fc::ShardExecutor executor(o);
  // Never more workers than shards.
  EXPECT_EQ(executor.resolved_workers(3), 3u);
  EXPECT_EQ(executor.resolved_workers(100), 8u);
  EXPECT_GE(executor.resolved_shard_size(100), 1u);
  EXPECT_LE(executor.resolved_shard_size(1'000'000), 64u);

  fc::ShardOptions fixed;
  fixed.workers = 2;
  fixed.shard_size = 7;
  const fc::ShardExecutor pinned(fixed);
  EXPECT_EQ(pinned.resolved_shard_size(100), 7u);
}

TEST_F(ShardExecutor, DisableEnvDegradesToInProcess) {
  ScopedDisable disable;
  const auto scenarios = sweep_batch(6);
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(fast_options(2, 2));
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_TRUE(got.stats.degraded_in_process);
  EXPECT_EQ(got.stats.workers_spawned, 0u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const fc::ScenarioResult reference = fc::run_scenario(scenarios[i]);
    ASSERT_TRUE(got.results[i].ok()) << got.results[i].error;
    EXPECT_TRUE(bitwise_equal(got.results[i], reference));
  }
}

TEST_F(ShardExecutor, AlienWaveformRunsInTheSupervisor) {
  struct AlienWaveform final : fw::Waveform {
    [[nodiscard]] double value(double t) const override { return 100.0 * t; }
    [[nodiscard]] double derivative(double) const override { return 100.0; }
  };

  auto scenarios = sweep_batch(5);
  scenarios[2].drive =
      fc::TimeDrive{std::make_shared<AlienWaveform>(), 0.0, 1.0, 50};

  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(fast_options(2, 2));
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_EQ(got.stats.in_process_fallback, 1u);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const fc::ScenarioResult reference = fc::run_scenario(scenarios[i]);
    EXPECT_EQ(got.results[i].error.code, reference.error.code) << i;
    EXPECT_TRUE(bitwise_equal(got.results[i], reference)) << i;
  }
}

TEST_F(ShardExecutor, PreCancelledGateDrainsEverythingAsCancelled) {
  const auto scenarios = sweep_batch(10);
  fc::RunLimits limits;
  limits.cancel.cancel();
  fc::RunGate gate(limits);
  const fc::ShardExecutor executor(fast_options(2, 2));
  const Collected got = collect(executor, scenarios, gate);

  for (const auto& r : got.results) {
    EXPECT_EQ(r.error.code, fc::ErrorCode::kCancelled) << r.error;
  }
  EXPECT_EQ(gate.cancelled(), scenarios.size());
}

TEST_F(ShardExecutor, ExpiredDeadlineDrainsWithTheDeadlineVerdict) {
  const auto scenarios = sweep_batch(10);
  fc::RunLimits limits;
  limits.deadline_s = 1e-9;
  fc::RunGate gate(limits);
  const fc::ShardExecutor executor(fast_options(2, 2));
  const Collected got = collect(executor, scenarios, gate);

  // The gate may only trip after some scenarios already finished; everything
  // unfinished must carry the deadline verdict, nothing may be lost.
  for (const auto& r : got.results) {
    EXPECT_TRUE(r.ok() || r.error.code == fc::ErrorCode::kDeadlineExceeded)
        << r.error;
  }
}

TEST_F(ShardExecutor, MidRunCancellationDeliversEveryIndexOnce) {
  const auto scenarios = sweep_batch(48);
  fc::RunLimits limits;
  fc::RunGate gate(limits);
  std::thread canceller([&limits] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    limits.cancel.cancel();
  });
  const fc::ShardExecutor executor(fast_options(2, 4));
  const Collected got = collect(executor, scenarios, gate);
  canceller.join();

  for (const auto& r : got.results) {
    EXPECT_TRUE(r.ok() || r.error.code == fc::ErrorCode::kCancelled)
        << r.error;
  }
}

// -- BatchRunner integration -------------------------------------------------

TEST_F(ShardExecutor, BatchRunnerRoutesProcessIsolationBitwise) {
  const auto scenarios = sweep_batch(16);
  const fc::BatchRunner runner;
  const auto in_process = runner.run(scenarios);
  fc::RunOptions options;
  options.isolation = fc::Isolation::kProcess;
  options.shard = fast_options(2, 4);
  const auto isolated = runner.run(scenarios, options);

  ASSERT_EQ(isolated.size(), in_process.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(isolated[i], in_process[i])) << i;
  }
}

TEST_F(ShardExecutor, StreamingSinkSeesEveryIndexUnderProcessIsolation) {
  const auto scenarios = sweep_batch(12);

  struct RecordingSink : fc::ResultSink {
    void on_start(std::size_t n) override { total = n; }
    void on_result(std::size_t index, fc::ScenarioResult&&) override {
      indices.push_back(index);
    }
    void on_complete() override { ++completes; }
    std::vector<std::size_t> indices;
    std::size_t total = 0;
    int completes = 0;
  } sink;

  fc::RunOptions options;
  options.isolation = fc::Isolation::kProcess;
  options.shard = fast_options(2, 3);
  const fc::StreamSummary summary =
      fc::BatchRunner().run(scenarios, sink, options);

  EXPECT_EQ(sink.total, scenarios.size());
  EXPECT_EQ(sink.completes, 1);
  EXPECT_EQ(summary.delivered + summary.discarded_deliveries,
            scenarios.size());
  std::set<std::size_t> unique(sink.indices.begin(), sink.indices.end());
  EXPECT_EQ(unique.size(), scenarios.size());
}

#ifdef FERRO_FAULT_INJECTION

// -- Crash recovery (needs real worker deaths: the injected-fault build) ----

TEST_F(ShardExecutor, PoisonScenarioIsBisectedOutOf256) {
  // The acceptance scenario: 1 poison among 256. Every worker that tries
  // job#137 aborts (armed sites are inherited across fork with per-process
  // counters, so the poison follows the scenario through retries, respawns,
  // and bisection).
  const auto scenarios = sweep_batch(256);
  fc::FaultInjector::arm(
      fc::FaultSite::kWorkerCrash,
      {fc::FaultAction::kAbort, /*nth=*/1, /*count=*/1u << 20,
       /*stall_ms=*/0, /*match=*/"#137/"});

  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(fast_options(4, 8));
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_EQ(got.results[137].error.code, fc::ErrorCode::kWorkerCrashed)
      << got.results[137].error;
  EXPECT_EQ(got.stats.poisoned, 1u);
  EXPECT_GE(got.stats.worker_crashes, 1u);
  EXPECT_GE(got.stats.bisections, 1u) << "a shard of 8 must bisect to 1";
  EXPECT_GE(gate.quarantined(), 1u);

  // The other 255 results are bitwise identical to an in-process run.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i == 137) continue;
    const fc::ScenarioResult reference = fc::run_scenario(scenarios[i]);
    ASSERT_TRUE(got.results[i].ok()) << i << ": " << got.results[i].error;
    ASSERT_TRUE(bitwise_equal(got.results[i], reference))
        << "scenario " << i << " differs from the in-process run";
  }
}

TEST_F(ShardExecutor, PoisonIsReportedThroughBatchRunnerStreaming) {
  const auto scenarios = sweep_batch(32);
  fc::FaultInjector::arm(
      fc::FaultSite::kWorkerCrash,
      {fc::FaultAction::kAbort, /*nth=*/1, /*count=*/1u << 20,
       /*stall_ms=*/0, /*match=*/"#7/"});

  struct RecordingSink : fc::ResultSink {
    void on_result(std::size_t index, fc::ScenarioResult&& r) override {
      received.emplace_back(index, std::move(r));
    }
    std::vector<std::pair<std::size_t, fc::ScenarioResult>> received;
  } sink;

  fc::RunOptions options;
  options.isolation = fc::Isolation::kProcess;
  options.shard = fast_options(2, 4);
  const fc::StreamSummary summary =
      fc::BatchRunner().run(scenarios, sink, options);

  EXPECT_EQ(summary.delivered + summary.discarded_deliveries,
            scenarios.size());
  std::size_t crashed = 0;
  for (const auto& [index, r] : sink.received) {
    if (r.error.code == fc::ErrorCode::kWorkerCrashed) {
      EXPECT_EQ(index, 7u);
      ++crashed;
    }
  }
  EXPECT_EQ(crashed, 1u);
}

TEST_F(ShardExecutor, WedgedWorkerIsDetectedByHeartbeatTimeout) {
  const auto scenarios = sweep_batch(12);
  // job#3 stalls its worker well past the heartbeat timeout, on every
  // worker that picks it up; the supervisor must SIGKILL the wedged worker
  // and finish the batch within the configured timeouts rather than hang.
  fc::FaultInjector::arm(
      fc::FaultSite::kWorkerStall,
      {fc::FaultAction::kStall, /*nth=*/1, /*count=*/1u << 20,
       /*stall_ms=*/2000, /*match=*/"#3/"});

  fc::ShardOptions options = fast_options(2, 3);
  options.heartbeat_timeout_s = 0.2;
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(options);

  const auto start = std::chrono::steady_clock::now();
  const Collected got = collect(executor, scenarios, gate);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_GE(got.stats.worker_stalls, 1u);
  EXPECT_EQ(got.results[3].error.code, fc::ErrorCode::kWorkerCrashed)
      << got.results[3].error;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(got.results[i].ok()) << i << ": " << got.results[i].error;
  }
  // Retry courses are immediate and the stall is detected at ~0.2 s each
  // time; even with bisection overhead the batch must finish promptly.
  EXPECT_LT(elapsed, 20.0);
}

TEST_F(ShardExecutor, CorruptResultFrameIsContainedAndCounted) {
  const auto scenarios = sweep_batch(16);
  // Every worker corrupts its first job#5 result frame; the supervisor
  // must catch the checksum mismatch, never trust the payload, and contain
  // the scenario like any other repeat offender.
  fc::FaultInjector::arm(
      fc::FaultSite::kWireCorrupt,
      {fc::FaultAction::kPoison, /*nth=*/1, /*count=*/1u << 20,
       /*stall_ms=*/0, /*match=*/"#5/"});

  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(fast_options(2, 4));
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_GE(got.stats.wire_errors, 1u);
  EXPECT_EQ(got.results[5].error.code, fc::ErrorCode::kWorkerCrashed)
      << got.results[5].error;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i == 5) continue;
    const fc::ScenarioResult reference = fc::run_scenario(scenarios[i]);
    ASSERT_TRUE(got.results[i].ok()) << i << ": " << got.results[i].error;
    ASSERT_TRUE(bitwise_equal(got.results[i], reference)) << i;
  }
}

TEST_F(ShardExecutor, RestartBudgetExhaustionCancelsTheRemainder) {
  const auto scenarios = sweep_batch(24);
  // Every worker dies before its first scenario: no progress is possible,
  // and the executor must stop burning processes at the restart budget and
  // report the remainder instead of spinning forever.
  fc::FaultInjector::arm(fc::FaultSite::kWorkerCrash,
                         {fc::FaultAction::kAbort, /*nth=*/1,
                          /*count=*/1u << 20, /*stall_ms=*/0, /*match=*/""});

  fc::ShardOptions options = fast_options(2, 4);
  options.max_worker_restarts = 3;
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(options);
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_LE(got.stats.workers_spawned, 2u + 3u);
  std::size_t budget_cancelled = 0;
  for (const auto& r : got.results) {
    EXPECT_FALSE(r.ok()) << "nothing can succeed when every worker dies";
    if (r.error.code == fc::ErrorCode::kCancelled &&
        r.error.detail.find("restart budget") != std::string::npos) {
      ++budget_cancelled;
    }
  }
  EXPECT_GT(budget_cancelled, 0u)
      << "the budget verdict must name the restart budget";
}

TEST_F(ShardExecutor, KillStormStillDeliversEveryIndexExactlyOnce) {
  const auto scenarios = sweep_batch(32);
  // A storm: every worker survives two scenarios, then dies on each later
  // one. Fresh workers keep making bounded progress; the supervisor must
  // neither hang nor lose or duplicate an index, whatever mix of retries,
  // bisections, and poison verdicts the storm produces.
  fc::FaultInjector::arm(fc::FaultSite::kWorkerCrash,
                         {fc::FaultAction::kAbort, /*nth=*/3,
                          /*count=*/1u << 20, /*stall_ms=*/0, /*match=*/""});

  fc::ShardOptions options = fast_options(4, 4);
  options.max_worker_restarts = 64;
  fc::RunGate gate{fc::RunLimits{}};
  const fc::ShardExecutor executor(options);
  const Collected got = collect(executor, scenarios, gate);

  EXPECT_GE(got.stats.worker_crashes, 1u);
  for (const auto& r : got.results) {
    EXPECT_TRUE(r.ok() || r.error.code == fc::ErrorCode::kWorkerCrashed ||
                r.error.code == fc::ErrorCode::kCancelled)
        << r.error;
  }
}

#else  // !FERRO_FAULT_INJECTION

TEST_F(ShardExecutor, RecoveryTestsNeedFaultInjection) {
  GTEST_SKIP() << "worker-crash recovery tests need the injected-fault "
                  "build; reconfigure with -DFERRO_FAULT_INJECTION=ON";
}

#endif  // FERRO_FAULT_INJECTION

}  // namespace
