// Tests for the classic (textbook) Jiles-Atherton reference model,
// including the CLM5 negative-slope regime of the unclamped original.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/loop_metrics.hpp"
#include "analysis/stability.hpp"
#include "mag/bh.hpp"
#include "mag/classic_ja.hpp"
#include "mag/timeless_ja.hpp"
#include "support/fixtures.hpp"
#include "util/constants.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;

using ferro::testsupport::major_loop;

namespace {

fm::JaParameters classic_steel() {
  // The canonical 1984 fit (alpha*Ms = 2720, k = 2000): like the paper's
  // set, prone to negative slopes when unclamped.
  return fm::find_material("ja-1984-steel")->params;
}

}  // namespace

TEST(ClassicJa, VirginStateAndReset) {
  fm::ClassicJa ja(classic_steel());
  EXPECT_DOUBLE_EQ(ja.magnetisation(), 0.0);
  EXPECT_DOUBLE_EQ(ja.present_h(), 0.0);
  ja.apply(1000.0);
  EXPECT_GT(ja.magnetisation(), 0.0);
  ja.reset();
  EXPECT_DOUBLE_EQ(ja.magnetisation(), 0.0);
  EXPECT_EQ(ja.stats().steps, 0u);
}

TEST(ClassicJa, ApproachesSaturation) {
  fm::ClassicJa ja(classic_steel());
  ja.apply(50e3);
  EXPECT_GT(ja.magnetisation(), 0.8 * classic_steel().ms);
  EXPECT_LT(ja.magnetisation(), classic_steel().ms);
}

TEST(ClassicJa, FluxDensityDefinition) {
  fm::ClassicJa ja(classic_steel());
  ja.apply(5000.0);
  EXPECT_NEAR(ja.flux_density(),
              ferro::util::kMu0 * (ja.magnetisation() + 5000.0), 1e-12);
}

TEST(ClassicJa, HysteresisLoopHasArea) {
  fm::ClassicJa ja(classic_steel());
  fm::BhCurve curve;
  const fw::HSweep sweep = major_loop(50.0, 2);
  for (const double h : sweep.h) {
    ja.apply(h);
    curve.append(h, ja.magnetisation(), ja.flux_density());
  }
  // Remanence at the end of a falling branch through zero field.
  double b_at_zero = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const auto& p0 = curve.points()[i - 1];
    const auto& p1 = curve.points()[i];
    if (p0.h > 0.0 && p1.h <= 0.0) b_at_zero = p1.b;
  }
  EXPECT_GT(b_at_zero, 0.1);
}

TEST(ClassicJa, StepSizeConvergence) {
  // Halving dh_step must not change the result appreciably (RK4 inside).
  fm::ClassicConfig coarse;
  coarse.dh_step = 20.0;
  fm::ClassicConfig fine;
  fine.dh_step = 2.0;

  fm::ClassicJa ja_coarse(classic_steel(), coarse);
  fm::ClassicJa ja_fine(classic_steel(), fine);
  const fw::HSweep sweep = fw::SweepBuilder(100.0).cycles(8e3, 1).build();
  for (const double h : sweep.h) {
    ja_coarse.apply(h);
    ja_fine.apply(h);
  }
  EXPECT_NEAR(ja_coarse.magnetisation(), ja_fine.magnetisation(),
              0.01 * classic_steel().ms);
}

TEST(ClassicJa, UnclampedPaperParametersShowNegativeSlopes) {
  // CLM5: with alpha*Ms = 4800 > k = 4000, the original JA model's slope
  // denominator flips sign and B falls while H rises.
  fm::ClassicConfig cfg;
  cfg.clamp_negative_slope = false;
  fm::ClassicJa ja(fm::paper_parameters(), cfg);

  fm::BhCurve curve;
  const fw::HSweep sweep = major_loop(25.0, 1);
  for (const double h : sweep.h) {
    ja.apply(h);
    curve.append(h, ja.magnetisation(), ja.flux_density());
  }
  EXPECT_GT(ja.stats().negative_slope_steps, 0u);
  EXPECT_LT(ja.stats().min_slope_seen, 0.0);

  const fa::SlopeReport report = fa::scan_slopes(curve, 1e-9, 1e-9);
  EXPECT_GT(report.negative_segments, 0u);
}

TEST(ClassicJa, ClampedPaperParametersStayPhysical) {
  fm::ClassicConfig cfg;  // clamped by default
  fm::ClassicJa ja(fm::paper_parameters(), cfg);

  fm::BhCurve curve;
  const fw::HSweep sweep = major_loop(25.0, 1);
  for (const double h : sweep.h) {
    ja.apply(h);
    curve.append(h, ja.magnetisation(), ja.flux_density());
  }
  const fa::SlopeReport report = fa::scan_slopes(curve, 1e-9, 1e-9);
  EXPECT_EQ(report.negative_segments, 0u);
  EXPECT_GT(ja.stats().slope_clamps, 0u);  // the guard did fire
  // Incidence is still *recorded* even while clamped.
  EXPECT_GT(ja.stats().negative_slope_steps, 0u);
}

TEST(ClassicJa, RawSlopeConsistentVsExplicitVariant) {
  fm::ClassicConfig consistent;
  fm::ClassicConfig naive;
  naive.consistent_reversible = false;

  const fm::ClassicJa ja_c(classic_steel(), consistent);
  const fm::ClassicJa ja_n(classic_steel(), naive);
  // Both variants agree at zero state and modest field.
  const double sc = ja_c.raw_slope(100.0, 0.0, +1.0);
  const double sn = ja_n.raw_slope(100.0, 0.0, +1.0);
  EXPECT_GT(sc, 0.0);
  EXPECT_GT(sn, 0.0);
  // The consistent correction enlarges the slope (denominator < 1).
  EXPECT_GT(sc, sn);
}

TEST(ClassicJa, AgreesWithTimelessModelQualitatively) {
  // Different algebraic conventions, same physics: remanence and coercivity
  // of the two models lie within a factor-2 band of each other.
  fm::ClassicJa classic(fm::paper_parameters());
  fm::BhCurve classic_curve;
  const fw::HSweep sweep = major_loop(10.0, 2);
  for (const double h : sweep.h) {
    classic.apply(h);
    classic_curve.append(h, classic.magnetisation(), classic.flux_density());
  }

  fm::TimelessConfig tcfg;
  tcfg.dhmax = 10.0;
  fm::TimelessJa timeless(fm::paper_parameters(), tcfg);
  fm::BhCurve timeless_curve = fm::run_sweep(timeless, sweep);

  const auto band = [](double x, double y) {
    return x < 2.0 * y && y < 2.0 * x;
  };
  const auto mc = fa::analyze_loop(classic_curve);
  const auto mt = fa::analyze_loop(timeless_curve);
  EXPECT_TRUE(band(mc.coercivity, mt.coercivity))
      << mc.coercivity << " vs " << mt.coercivity;
  EXPECT_TRUE(band(mc.remanence, mt.remanence))
      << mc.remanence << " vs " << mt.remanence;
}
