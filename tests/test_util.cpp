// Unit tests for ferro::util — constants, strings, CSV, stats, interp, log.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "util/constants.hpp"
#include "util/csv.hpp"
#include "util/stream_writer.hpp"
#include "util/interp.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace fu = ferro::util;

TEST(Constants, Mu0MatchesFourPiTimes1e7) {
  EXPECT_NEAR(fu::kMu0, 4.0 * fu::kPi * 1e-7, 1e-21);
}

TEST(Constants, TwoOverPi) {
  EXPECT_NEAR(fu::kTwoOverPi, 2.0 / fu::kPi, 1e-16);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = fu::split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(Strings, SplitSingleField) {
  const auto fields = fu::split("alone", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(fu::trim("  x y \t"), "x y");
  EXPECT_EQ(fu::trim(""), "");
  EXPECT_EQ(fu::trim(" \t "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(fu::starts_with("hello", "he"));
  EXPECT_FALSE(fu::starts_with("he", "hello"));
  EXPECT_TRUE(fu::starts_with("x", ""));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(fu::format_double(1.5), "1.5");
  EXPECT_EQ(fu::format_double(0.0), "0");
}

TEST(Strings, FormatEngineering) {
  EXPECT_EQ(fu::format_engineering(4000.0, "A/m"), "4.000 kA/m");
  EXPECT_EQ(fu::format_engineering(1.6e6, "A/m"), "1.600 MA/m");
}

TEST(Csv, RoundTrip) {
  const std::string path = "test_util_roundtrip.csv";
  {
    fu::CsvWriter writer(path, {"a", "b"});
    writer.row({1.0, 2.0});
    writer.row({3.5, -4.25});
    EXPECT_TRUE(writer.ok());
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  const fu::CsvTable table = fu::read_csv(path);
  ASSERT_EQ(table.columns.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.column_index("b"), 1);
  EXPECT_EQ(table.column_index("missing"), -1);
  const auto b = table.column("b");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_DOUBLE_EQ(b[1], -4.25);
  std::filesystem::remove(path);
}

TEST(Csv, WrongRowWidthMarksNotOk) {
  const std::string path = "test_util_width.csv";
  fu::CsvWriter writer(path, {"a", "b"});
  writer.row({1.0});
  EXPECT_FALSE(writer.ok());
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileGivesEmptyTable) {
  const fu::CsvTable table = fu::read_csv("definitely_missing_file.csv");
  EXPECT_TRUE(table.columns.empty());
  EXPECT_TRUE(table.rows.empty());
}

TEST(Stats, RunningStatsMeanVariance) {
  fu::RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsEmptyAndReset) {
  fu::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, RunningStatsCatastrophicCancellationNeverNansStddev) {
  // Near-identical samples around a huge mean: the squared deviations are
  // ~30 orders of magnitude below mean^2, the regime where a sum-of-squares
  // accumulator cancels catastrophically. The Welford accumulator plus the
  // variance() clamp must keep variance >= 0 and stddev finite (not NaN)
  // for every prefix of the stream.
  fu::RunningStats s;
  const double base = 1e15;
  const double ulp = std::nextafter(base, 2.0 * base) - base;
  const double jitter[] = {0.0, ulp, -ulp, 0.0, 2.0 * ulp, ulp, -2.0 * ulp,
                           0.0, -ulp, ulp};
  for (const double j : jitter) {
    s.add(base + j);
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_FALSE(std::isnan(s.stddev()));
    EXPECT_TRUE(std::isfinite(s.stddev()));
  }
  // All samples within a few ulps of base: stddev must reflect that scale.
  EXPECT_LE(s.stddev(), 4.0 * ulp);
}

TEST(Stats, RunningStatsIdenticalLargeSamplesHaveZeroVariance) {
  fu::RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1.0e18 + 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, RmsAndDiffs) {
  const std::vector<double> a = {3.0, 4.0};
  const std::vector<double> b = {0.0, 0.0};
  EXPECT_NEAR(fu::rms(a), std::sqrt(12.5), 1e-12);
  EXPECT_NEAR(fu::rms_diff(a, b), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(fu::max_abs_diff(a, b), 4.0);
  EXPECT_DOUBLE_EQ(fu::max_abs(a), 4.0);
  EXPECT_DOUBLE_EQ(fu::rms({}), 0.0);
}

TEST(Interp, LerpInteriorAndClamp) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(fu::lerp_at(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(fu::lerp_at(xs, ys, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(fu::lerp_at(xs, ys, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(fu::lerp_at(xs, ys, 3.0), 40.0);   // clamp high
}

TEST(Interp, Resample) {
  const std::vector<double> xs = {0.0, 2.0};
  const std::vector<double> ys = {0.0, 4.0};
  const std::vector<double> xq = {0.0, 1.0, 2.0};
  const auto out = fu::resample(xs, ys, xq);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(Interp, Linspace) {
  const auto g = fu::linspace(-1.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), -1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
}

TEST(Interp, LinspaceDegenerateCountsAreWellDefined) {
  // Release-mode regression: n == 0 used to underflow n - 1 and call
  // .back() on an empty vector (UB); n == 1 divided the span by zero.
  EXPECT_TRUE(fu::linspace(0.0, 1.0, 0).empty());
  const auto one = fu::linspace(3.5, 9.0, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one.front(), 3.5);
  const auto two = fu::linspace(-2.0, 2.0, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two.front(), -2.0);
  EXPECT_DOUBLE_EQ(two.back(), 2.0);
}

TEST(Interp, LerpPropagatesNanQueries) {
  // A NaN query compares false against every grid point; it used to fall
  // through the clamp branches into upper_bound (unordered predicate, index
  // underflow). It must come back as NaN, not as a silently interpolated
  // value.
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 40.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(fu::lerp_at(xs, ys, nan)));
  const auto out = fu::resample(xs, ys, std::vector<double>{0.5, nan, 1.5});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_TRUE(std::isnan(out[1]));
  EXPECT_DOUBLE_EQ(out[2], 25.0);
}

TEST(Interp, TrapezoidIntegral) {
  // y = x on [0, 2] -> integral 2.
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(fu::trapezoid(xs, ys), 2.0);
}

TEST(Interp, TrapezoidClosedLoopAreaIsZeroForDegenerate) {
  // Out and back along the same path cancels.
  const std::vector<double> xs = {0.0, 1.0, 0.0};
  const std::vector<double> ys = {0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(fu::trapezoid(xs, ys), 0.0);
}

TEST(Log, LevelFiltering) {
  const fu::LogLevel saved = fu::log_level();
  fu::set_log_level(fu::LogLevel::kError);
  EXPECT_EQ(fu::log_level(), fu::LogLevel::kError);
  // Below threshold: must not crash, output suppressed.
  fu::log_debug("test", "hidden");
  fu::log_info("test", "hidden");
  fu::log_warning("test", "hidden");
  fu::set_log_level(saved);
}

TEST(StreamWriter, CsvRowsAreOnDiskBeforeTheWriterCloses) {
  const std::string path = "test_util_stream.csv";
  fu::CsvStreamWriter writer(path, {"x", "y"}, /*flush_every=*/1);
  writer.row({1.0, 2.0});
  writer.row({3.0, 4.5});
  EXPECT_TRUE(writer.ok());
  EXPECT_EQ(writer.rows_written(), 2u);

  // The writer is still open — a tailing consumer must already see the rows.
  const fu::CsvTable table = fu::read_csv(path);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 4.5);
  std::filesystem::remove(path);
}

TEST(StreamWriter, CsvRoundTripsFullDoublePrecision) {
  const std::string path = "test_util_stream_precision.csv";
  const double value = 0.1 + 0.2;  // not representable; shortest-round-trip
  {
    fu::CsvStreamWriter writer(path, {"v"});
    writer.row({value});
  }
  const fu::CsvTable table = fu::read_csv(path);
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], value);  // bitwise, not just near
  std::filesystem::remove(path);
}

TEST(StreamWriter, CsvWrongRowWidthMarksNotOk) {
  const std::string path = "test_util_stream_width.csv";
  fu::CsvStreamWriter writer(path, {"a", "b"});
  writer.row({1.0});
  EXPECT_FALSE(writer.ok());
  std::filesystem::remove(path);
}

TEST(StreamWriter, JsonLinesRecordsAndEscapes) {
  const std::string path = "test_util_stream.jsonl";
  {
    fu::JsonLinesWriter writer(path);
    writer.record({{"name", std::string_view("say \"hi\"\n")},
                   {"value", 2.5},
                   {"ok", true},
                   {"count", std::uint64_t{7}}});
    EXPECT_TRUE(writer.ok());
    EXPECT_EQ(writer.records_written(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "{\"name\": \"say \\\"hi\\\"\\n\", \"value\": 2.5, "
            "\"ok\": true, \"count\": 7}");
  std::filesystem::remove(path);
}

TEST(StreamWriter, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(fu::json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(fu::json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(fu::json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(fu::json_escape("plain"), "plain");
}

TEST(StreamWriter, JsonLinesWritesNonFiniteNumbersAsNull) {
  const std::string path = "test_util_stream_nan.jsonl";
  {
    fu::JsonLinesWriter writer(path);
    writer.record({{"bad", std::nan("")},
                   {"worse", std::numeric_limits<double>::infinity()},
                   {"fine", 1.0}});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "{\"bad\": null, \"worse\": null, \"fine\": 1}");
  std::filesystem::remove(path);
}
