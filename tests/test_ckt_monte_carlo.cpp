// ckt::MonteCarlo tests: scatter determinism, thread-count and partition
// bitwise invariance, packed-vs-scalar identity (down to the waveforms),
// poison-corner isolation, RunLimits, and the streaming delivery contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "ckt/engine.hpp"
#include "ckt/ja_inductor.hpp"
#include "ckt/monte_carlo.hpp"
#include "ckt/netlist.hpp"
#include "ckt/rlc.hpp"
#include "ckt/scatter.hpp"
#include "ckt/sources.hpp"
#include "wave/standard.hpp"

namespace fk = ferro::ckt;
namespace fe = ferro::core;
namespace fm = ferro::mag;
namespace fw = ferro::wave;

namespace {

/// The inrush demo circuit scaled down to a fast test transient.
void build_corner(const fk::CornerView& view, fk::Circuit& circuit) {
  const auto in = circuit.node("in");
  const auto out = circuit.node("out");
  circuit.add<fk::VoltageSource>("V", in, fk::kGround,
                                 std::make_shared<fw::Sine>(8.0, 50.0));
  circuit.add<fk::Resistor>("R", in, out, view.value("r.value", 0.8));
  fm::CoreGeometry geom;
  geom.area = view.value("lcore.area", 1e-4);
  geom.path_length = 0.1;
  geom.turns = 100;
  fm::TimelessConfig config;
  config.dhmax = 5.0;
  fm::JaParameters params = fm::paper_parameters();
  params.ms = view.value("lcore.ms", params.ms);
  circuit.add<fk::JaInductor>("Lcore", out, fk::kGround, geom, params, config);
}

fk::ScatterSpec demo_spec() {
  fk::ScatterSpec spec;
  spec.params = {
      {"r.value", 0.05, fk::ScatterKind::kUniform},
      {"lcore.area", 0.02, fk::ScatterKind::kUniform},
      {"lcore.ms", 0.10, fk::ScatterKind::kNormal},
  };
  return spec;
}

fk::MonteCarloOptions demo_options(std::size_t corners) {
  fk::MonteCarloOptions options;
  options.corners = corners;
  options.transient.t_end = 2e-3;  // a tenth of a cycle: fast but nontrivial
  options.transient.dt_initial = 1e-6;
  options.transient.dt_max = 2e-5;
  options.probes = {{fk::Probe::Kind::kBranchCurrent, "Lcore"},
                    {fk::Probe::Kind::kCoreFluxDensity, "Lcore"}};
  return options;
}

fk::MonteCarlo demo_mc(std::uint64_t seed = 7) {
  return fk::MonteCarlo(fk::CornerSampler(demo_spec(), seed), build_corner);
}

bool bitwise_equal(const fk::CornerResult& a, const fk::CornerResult& b) {
  if (a.index != b.index || a.error.code != b.error.code) return false;
  if (std::memcmp(&a.stats, &b.stats, sizeof(a.stats)) != 0) return false;
  if (a.draws.factors.size() != b.draws.factors.size()) return false;
  for (std::size_t i = 0; i < a.draws.factors.size(); ++i) {
    if (std::memcmp(&a.draws.factors[i], &b.draws.factors[i],
                    sizeof(double)) != 0) {
      return false;
    }
  }
  if (a.probes.size() != b.probes.size()) return false;
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    if (std::memcmp(&a.probes[i], &b.probes[i], sizeof(fk::ProbeSummary)) !=
        0) {
      return false;
    }
  }
  if (a.t.size() != b.t.size() || a.waveforms.size() != b.waveforms.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.t.size(); ++i) {
    if (std::memcmp(&a.t[i], &b.t[i], sizeof(double)) != 0) return false;
  }
  for (std::size_t p = 0; p < a.waveforms.size(); ++p) {
    if (a.waveforms[p].size() != b.waveforms[p].size()) return false;
    for (std::size_t i = 0; i < a.waveforms[p].size(); ++i) {
      if (std::memcmp(&a.waveforms[p][i], &b.waveforms[p][i],
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

TEST(Scatter, ParseSpecAndDiagnostics) {
  const auto parsed = fk::parse_scatter_spec(
      "# tolerances\n"
      "r1.value 0.05\n"
      "y1.ms    0.10 normal   * trailing comment\n"
      "\n"
      "y1.area  0.02 uniform\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.spec->size(), 3u);
  EXPECT_EQ(parsed.spec->params[0].key, "r1.value");
  EXPECT_EQ(parsed.spec->params[0].kind, fk::ScatterKind::kUniform);
  EXPECT_EQ(parsed.spec->params[1].kind, fk::ScatterKind::kNormal);
  EXPECT_TRUE(parsed.spec->find("y1.ms").has_value());
  EXPECT_FALSE(parsed.spec->find("nope.value").has_value());

  const auto bad = fk::parse_scatter_spec(
      "novalue\n"
      "nodot 0.1\n"
      "r1.value nan-ish\n"
      "r1.value 1.5\n"
      "dup.x 0.1\ndup.x 0.2\n"
      "d.k 0.1 cauchy\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.errors.size(), 6u);
}

TEST(Scatter, DrawsAreDeterministicAndBounded) {
  const fk::CornerSampler sampler(demo_spec(), 123);
  const fk::CornerSampler same(demo_spec(), 123);
  const fk::CornerSampler other(demo_spec(), 124);

  for (std::size_t i = 0; i < 64; ++i) {
    const auto a = sampler.corner(i);
    const auto b = same.corner(i);
    ASSERT_EQ(a.factors.size(), 3u);
    for (std::size_t p = 0; p < a.factors.size(); ++p) {
      EXPECT_EQ(a.factors[p], b.factors[p]);  // pure function of (seed, i)
    }
    // Uniform draws live in [1 - tol, 1 + tol); normal draws are truncated
    // at 3 sigma, so the same bound holds for them too.
    const double tolerances[3] = {0.05, 0.02, 0.10};
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_GE(a.factors[p], 1.0 - tolerances[p]);
      EXPECT_LE(a.factors[p], 1.0 + tolerances[p]);
    }
  }
  // Different seeds decorrelate (astronomically unlikely to collide).
  EXPECT_NE(sampler.corner(0).factors[0], other.corner(0).factors[0]);
}

TEST(MonteCarlo, MatchesDirectTransientAtCorner) {
  // Corner i of the sweep must be bit-for-bit the run you get by building
  // the same circuit by hand and calling run_transient — packing included.
  const std::size_t kCorner = 3;
  const fk::CornerSampler sampler(demo_spec(), 7);

  auto options = demo_options(8);
  options.record_waveforms = true;
  options.packing = fk::McPacking::kPackedExact;
  const auto results = demo_mc().run(options);
  ASSERT_EQ(results.size(), 8u);
  const fk::CornerResult& mc = results[kCorner];
  ASSERT_TRUE(mc.ok()) << mc.error;

  fk::Circuit circuit;
  const auto draws = sampler.corner(kCorner);
  build_corner(fk::CornerView(sampler.spec(), draws, kCorner), circuit);
  std::vector<double> i_wave, b_wave, t_wave;
  const fk::JaInductor* core = nullptr;
  for (const auto& d : circuit.devices()) {
    if ((core = dynamic_cast<const fk::JaInductor*>(d.get()))) break;
  }
  fk::CircuitStats stats;
  const fe::Error error = fk::run_transient(
      circuit, options.transient,
      [&](const fk::Solution& sol) {
        t_wave.push_back(sol.t);
        i_wave.push_back(sol.branch_current(1));
        b_wave.push_back(core->flux_density());
      },
      &stats);
  ASSERT_TRUE(error.ok()) << error;

  EXPECT_EQ(mc.stats.steps_accepted, stats.steps_accepted);
  EXPECT_EQ(mc.stats.newton_iterations, stats.newton_iterations);
  ASSERT_EQ(mc.t.size(), t_wave.size());
  for (std::size_t k = 0; k < t_wave.size(); ++k) {
    ASSERT_EQ(mc.t[k], t_wave[k]);
    ASSERT_EQ(mc.waveforms[0][k], i_wave[k]);  // bitwise: == on doubles
    ASSERT_EQ(mc.waveforms[1][k], b_wave[k]);
  }
}

TEST(MonteCarlo, ThreadCountAndPartitionInvariance) {
  // The property the scatter header promises: results are a pure function
  // of (seed, index) — never of the parallel schedule. Sweep thread counts
  // and chunk sizes (which are also the lockstep group sizes) and compare
  // everything bitwise, waveforms included.
  auto options = demo_options(12);
  options.record_waveforms = true;
  options.packing = fk::McPacking::kPackedExact;
  options.threads = 1;
  options.chunk = 12;  // one group: the whole sweep in lockstep
  const auto reference = demo_mc().run(options);
  ASSERT_EQ(reference.size(), 12u);
  for (const auto& r : reference) ASSERT_TRUE(r.ok()) << r.error;

  const struct {
    unsigned threads;
    std::size_t chunk;
  } schedules[] = {{1, 1}, {1, 5}, {2, 3}, {4, 1}, {4, 4}, {3, 7}};
  for (const auto& schedule : schedules) {
    options.threads = schedule.threads;
    options.chunk = schedule.chunk;
    const auto results = demo_mc().run(options);
    ASSERT_EQ(results.size(), reference.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(results[i], reference[i]))
          << "corner " << i << " diverged at threads=" << schedule.threads
          << " chunk=" << schedule.chunk;
    }
  }
}

TEST(MonteCarlo, PackedMatchesScalarBitwise) {
  auto options = demo_options(10);
  options.record_waveforms = true;
  options.packing = fk::McPacking::kScalar;
  const auto scalar = demo_mc().run(options);

  options.packing = fk::McPacking::kPackedExact;
  options.threads = 2;
  options.chunk = 5;
  const auto packed = demo_mc().run(options);

  ASSERT_EQ(scalar.size(), packed.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_TRUE(scalar[i].ok()) << scalar[i].error;
    EXPECT_TRUE(bitwise_equal(scalar[i], packed[i])) << "corner " << i;
  }
}

TEST(MonteCarlo, SeedReproducibilityAndDivergence) {
  const auto options = demo_options(6);
  const auto a = demo_mc(99).run(options);
  const auto b = demo_mc(99).run(options);
  const auto c = demo_mc(100).run(options);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a[i], b[i])) << "corner " << i;
    EXPECT_NE(a[i].probes[0].abs_peak, c[i].probes[0].abs_peak)
        << "seed change did not move corner " << i;
  }
}

TEST(MonteCarlo, PoisonCornerIsIsolated) {
  // One corner's builder throws; the neighbours in the same lockstep group
  // must come out bit-identical to a sweep where every corner is healthy.
  const fk::MonteCarlo healthy = demo_mc();
  const fk::MonteCarlo poisoned(
      fk::CornerSampler(demo_spec(), 7),
      [](const fk::CornerView& view, fk::Circuit& circuit) {
        if (view.index() == 2) throw std::runtime_error("poison corner");
        build_corner(view, circuit);
      });

  auto options = demo_options(6);
  options.record_waveforms = true;
  options.chunk = 6;  // everything in one group with the poison corner
  const auto good = healthy.run(options);
  fe::BatchReport report;
  const auto mixed = poisoned.run(options, &report);

  ASSERT_EQ(mixed.size(), 6u);
  EXPECT_EQ(mixed[2].error.code, fe::ErrorCode::kInvalidScenario);
  EXPECT_NE(mixed[2].error.detail.find("poison corner"), std::string::npos);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(report.completed());
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 2) continue;
    EXPECT_TRUE(bitwise_equal(mixed[i], good[i])) << "corner " << i;
  }
}

TEST(MonteCarlo, UnresolvableProbeFailsTheCornerOnly) {
  auto options = demo_options(3);
  options.probes.push_back({fk::Probe::Kind::kNodeVoltage, "no-such-node"});
  fe::BatchReport report;
  const auto results = demo_mc().run(options, &report);
  EXPECT_EQ(report.failed, 3u);  // every corner names the same bad probe
  for (const auto& r : results) {
    EXPECT_EQ(r.error.code, fe::ErrorCode::kInvalidScenario);
  }
}

TEST(MonteCarlo, InvalidTransientOptionsRejectEveryCorner) {
  auto options = demo_options(4);
  options.transient.dt_max = options.transient.dt_initial / 2.0;  // < initial
  fe::BatchReport report;
  const auto results = demo_mc().run(options, &report);
  EXPECT_EQ(report.failed, 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.error.code, fe::ErrorCode::kInvalidScenario);
  }
}

TEST(MonteCarlo, CancellationDrainsWithMarkers) {
  auto options = demo_options(32);
  options.chunk = 1;
  options.limits.cancel.cancel();  // cancelled before the sweep starts
  fe::BatchReport report;
  const auto results = demo_mc().run(options, &report);
  ASSERT_EQ(results.size(), 32u);
  EXPECT_EQ(report.cancelled, 32u);
  EXPECT_EQ(report.stop.code, fe::ErrorCode::kCancelled);
  for (const auto& r : results) {
    EXPECT_EQ(r.error.code, fe::ErrorCode::kCancelled);
    EXPECT_EQ(r.draws.factors.size(), 3u);  // markers still carry the draws
  }
}

TEST(MonteCarlo, StreamingDeliversEveryCornerOnce) {
  class CountingSink final : public fk::CornerSink {
   public:
    std::size_t started = 0, completed = 0;
    std::vector<int> seen;
    void on_start(std::size_t total) override {
      ++started;
      seen.assign(total, 0);
    }
    void on_result(std::size_t index, fk::CornerResult&& result) override {
      ++seen.at(index);
      EXPECT_EQ(result.index, index);
    }
    void on_complete() override { ++completed; }
  };

  auto options = demo_options(9);
  options.threads = 3;
  options.chunk = 2;
  CountingSink sink;
  const fk::McStreamSummary summary = demo_mc().run(options, sink);
  EXPECT_EQ(sink.started, 1u);
  EXPECT_EQ(sink.completed, 1u);
  for (std::size_t i = 0; i < sink.seen.size(); ++i) {
    EXPECT_EQ(sink.seen[i], 1) << "corner " << i;
  }
  EXPECT_EQ(summary.delivered, 9u);
  EXPECT_EQ(summary.discarded_deliveries, 0u);
  EXPECT_TRUE(summary.ok());
  EXPECT_EQ(summary.batch.jobs, 9u);
}

TEST(MonteCarlo, OrderedStreamingMatchesCollect) {
  auto options = demo_options(8);
  options.threads = 4;
  options.chunk = 1;
  const auto collected = demo_mc().run(options);

  fk::CornerCollectingSink collecting;
  fk::CornerOrderedSink ordered(collecting);
  const auto summary = demo_mc().run(options, ordered);
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(collecting.results().size(), collected.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(collecting.results()[i], collected[i]))
        << "corner " << i;
  }
}

TEST(MonteCarlo, ProbeSummariesMatchWaveforms) {
  auto options = demo_options(2);
  options.record_waveforms = true;
  const auto results = demo_mc().run(options);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    for (std::size_t p = 0; p < r.probes.size(); ++p) {
      const auto& wave = r.waveforms[p];
      ASSERT_FALSE(wave.empty());
      double lo = wave[0], hi = wave[0], peak = 0.0;
      for (const double v : wave) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        peak = std::max(peak, std::fabs(v));
      }
      EXPECT_EQ(r.probes[p].min, lo);
      EXPECT_EQ(r.probes[p].max, hi);
      EXPECT_EQ(r.probes[p].abs_peak, peak);
      EXPECT_EQ(r.probes[p].final, wave.back());
    }
  }
}
