// Circuit-engine tests: MNA stamps against hand-solved networks, DC
// operating points, and transients with closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckt/diode.hpp"
#include "ckt/engine.hpp"
#include "ckt/netlist.hpp"
#include "ckt/rlc.hpp"
#include "ckt/sources.hpp"
#include "wave/standard.hpp"

namespace fk = ferro::ckt;
namespace fw = ferro::wave;

TEST(Netlist, NodeNamingAndGround) {
  fk::Circuit ckt;
  EXPECT_EQ(ckt.node("0"), fk::kGround);
  EXPECT_EQ(ckt.node("gnd"), fk::kGround);
  EXPECT_EQ(ckt.node("GND"), fk::kGround);
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(ckt.node("a"), a);  // idempotent
  EXPECT_EQ(ckt.node_count(), 2u);
  EXPECT_EQ(ckt.node_name(a), "a");
  EXPECT_EQ(ckt.node_name(fk::kGround), "0");
}

TEST(Dc, VoltageDivider) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<fk::VoltageSource>("V1", in, fk::kGround, 10.0);
  ckt.add<fk::Resistor>("R1", in, mid, 1000.0);
  ckt.add<fk::Resistor>("R2", mid, fk::kGround, 1000.0);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  // Tolerances admit the gmin (1e-12 S) leak every SPICE-class engine adds.
  EXPECT_NEAR(x[static_cast<std::size_t>(in)], 10.0, 1e-6);
  EXPECT_NEAR(x[static_cast<std::size_t>(mid)], 5.0, 1e-6);
  // Source branch current: 10 V across 2 kOhm = 5 mA (into the divider).
  EXPECT_NEAR(std::fabs(x[ckt.node_count()]), 5e-3, 1e-8);
}

TEST(Dc, CurrentSourceIntoResistor) {
  fk::Circuit ckt;
  const auto n = ckt.node("n");
  // 2 mA from ground into n through the source, 1 kOhm to ground: v = 2 V.
  ckt.add<fk::CurrentSource>("I1", fk::kGround, n, 2e-3);
  ckt.add<fk::Resistor>("R1", n, fk::kGround, 1000.0);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  EXPECT_NEAR(x[static_cast<std::size_t>(n)], 2.0, 1e-6);
}

TEST(Dc, ResistorLadder) {
  // Five equal resistors from 5 V to ground: equally spaced taps.
  fk::Circuit ckt;
  const auto top = ckt.node("n0");
  ckt.add<fk::VoltageSource>("V", top, fk::kGround, 5.0);
  fk::NodeId prev = top;
  for (int i = 1; i < 5; ++i) {
    const auto tap = ckt.node("n" + std::to_string(i));
    ckt.add<fk::Resistor>("R" + std::to_string(i), prev, tap, 100.0);
    prev = tap;
  }
  ckt.add<fk::Resistor>("R5", prev, fk::kGround, 100.0);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], 5.0 - static_cast<double>(i),
                1e-6)
        << "tap " << i;
  }
}

TEST(Dc, InductorIsShort) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, 3.0);
  ckt.add<fk::Resistor>("R", in, out, 100.0);
  ckt.add<fk::Inductor>("L", out, fk::kGround, 1e-3);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  // Quasi-short: the milliohm DC resistance leaves i*r_eps ~ 30 uV.
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 0.0, 1e-4);
  // Inductor branch current = 30 mA.
  EXPECT_NEAR(std::fabs(x[ckt.node_count() + 1]), 30e-3, 1e-6);
}

TEST(Dc, CapacitorIsOpen) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, 3.0);
  ckt.add<fk::Resistor>("R", in, out, 100.0);
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 3.0, 1e-6);  // no DC current
}

TEST(Dc, DiodeForwardDrop) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto d = ckt.node("d");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, 5.0);
  ckt.add<fk::Resistor>("R", in, d, 1000.0);
  auto& diode = ckt.add<fk::Diode>("D", d, fk::kGround);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  const double vd = x[static_cast<std::size_t>(d)];
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  // KCL: resistor current equals diode current.
  const double ir = (5.0 - vd) / 1000.0;
  EXPECT_NEAR(diode.current(vd), ir, 1e-6);
}

TEST(Dc, DiodeReverseBlocks) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto d = ckt.node("d");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, -5.0);
  ckt.add<fk::Resistor>("R", in, d, 1000.0);
  ckt.add<fk::Diode>("D", d, fk::kGround);

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  // Nearly no current: node d sits at the source potential.
  EXPECT_NEAR(x[static_cast<std::size_t>(d)], -5.0, 1e-2);
}

TEST(Transient, RcChargingMatchesClosedForm) {
  // v_c(t) = V (1 - exp(-t/RC)), R = 1k, C = 1u -> tau = 1 ms.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>(
      "V", in, fk::kGround, std::make_shared<fw::Step>(0.0, 1.0, 0.0));
  ckt.add<fk::Resistor>("R", in, out, 1000.0);
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6, /*v_initial=*/0.0);

  fk::TransientOptions options;
  options.t_end = 5e-3;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  double worst = 0.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    if (sol.t <= 0.0) return;
    const double expected = 1.0 - std::exp(-sol.t / 1e-3);
    worst = std::max(worst, std::fabs(sol.v(out) - expected));
  }).ok());
  EXPECT_LT(worst, 5e-3);
}

TEST(Transient, RlCurrentRise) {
  // i(t) = V/R (1 - exp(-t R/L)), R = 10, L = 10 mH -> tau = 1 ms.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<fk::VoltageSource>(
      "V", in, fk::kGround, std::make_shared<fw::Step>(0.0, 1.0, 0.0));
  ckt.add<fk::Resistor>("R", in, mid, 10.0);
  ckt.add<fk::Inductor>("L", mid, fk::kGround, 10e-3, /*i_initial=*/0.0);

  fk::TransientOptions options;
  options.t_end = 5e-3;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  double worst = 0.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    if (sol.t <= 0.0) return;
    const double expected = 0.1 * (1.0 - std::exp(-sol.t / 1e-3));
    const double i_l = sol.branch_current(1);  // branch 0 = source, 1 = L
    worst = std::max(worst, std::fabs(i_l - expected));
  }).ok());
  EXPECT_LT(worst, 1e-3);
}

TEST(Transient, RcDischargeBackwardEuler) {
  fk::Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6, /*v_initial=*/1.0);
  ckt.add<fk::Resistor>("R", out, fk::kGround, 1000.0);

  fk::TransientOptions options;
  options.t_end = 3e-3;
  options.dt_initial = 1e-6;
  options.dt_max = 1e-5;
  options.method = ferro::ams::IntegrationMethod::kBackwardEuler;

  double v_end = 1.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    v_end = sol.v(out);
  }).ok());
  EXPECT_NEAR(v_end, std::exp(-3.0), 2e-2);
}

TEST(Transient, RlcRingingFrequency) {
  // Series RLC: L = 1 mH, C = 1 uF, R = 1 Ohm (underdamped).
  // f0 = 1/(2 pi sqrt(LC)) ~ 5.03 kHz.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>(
      "V", in, fk::kGround, std::make_shared<fw::Step>(0.0, 1.0, 0.0));
  ckt.add<fk::Resistor>("R", in, a, 1.0);
  ckt.add<fk::Inductor>("L", a, out, 1e-3);
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6);

  fk::TransientOptions options;
  options.t_end = 2e-3;
  options.dt_initial = 1e-7;
  options.dt_max = 1e-6;

  // Count rising zero crossings of (v_out - 1) to estimate the frequency.
  int crossings = 0;
  double prev = -1.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    const double v = sol.v(out) - 1.0;
    if (prev < 0.0 && v >= 0.0) ++crossings;
    prev = v;
  }).ok());
  const double freq = static_cast<double>(crossings) / 2e-3;
  EXPECT_NEAR(freq, 5033.0, 600.0);
}

TEST(Transient, SwitchChangesTopology) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, 1.0);
  ckt.add<fk::Resistor>("R1", in, out, 1000.0);
  ckt.add<fk::TimedSwitch>("S", out, fk::kGround, /*t_switch=*/1e-3);

  fk::TransientOptions options;
  options.t_end = 2e-3;
  options.dt_initial = 1e-5;
  options.dt_max = 2e-5;

  double v_early = -1.0, v_late = -1.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    if (sol.t > 0.4e-3 && sol.t < 0.9e-3 && v_early < 0.0) v_early = sol.v(out);
    if (sol.t > 1.5e-3) v_late = sol.v(out);
  }).ok());
  EXPECT_NEAR(v_early, 1.0, 1e-3);  // switch open: no load current
  EXPECT_NEAR(v_late, 0.0, 1e-2);   // switch closed: pulled to ground
}

TEST(Transient, SineSteadyStateAmplitude) {
  // RC low-pass driven at f << f_c passes the signal through.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                             std::make_shared<fw::Sine>(1.0, 50.0));
  ckt.add<fk::Resistor>("R", in, out, 100.0);
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6);  // f_c ~ 1.6 kHz

  fk::TransientOptions options;
  options.t_end = 0.04;
  options.dt_initial = 1e-6;
  options.dt_max = 5e-5;

  double peak = 0.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    if (sol.t > 0.02) peak = std::max(peak, std::fabs(sol.v(out)));
  }).ok());
  EXPECT_NEAR(peak, 1.0, 0.02);
}

TEST(Transient, StatsPopulated) {
  fk::Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6, 1.0);
  ckt.add<fk::Resistor>("R", out, fk::kGround, 1000.0);

  fk::TransientOptions options;
  options.t_end = 1e-3;
  fk::CircuitStats stats;
  ASSERT_TRUE(fk::run_transient(ckt, options, {}, &stats).ok());
  EXPECT_GT(stats.steps_accepted, 10u);
  EXPECT_GT(stats.newton_iterations, 0u);
  EXPECT_EQ(stats.hard_failures, 0u);
}

// --- Structured errors and option validation (PR 10) ----------------------

namespace {

fk::Circuit make_rc() {
  fk::Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<fk::Capacitor>("C", out, fk::kGround, 1e-6, 1.0);
  ckt.add<fk::Resistor>("R", out, fk::kGround, 1000.0);
  return ckt;
}

}  // namespace

TEST(Validate, AcceptsDefaultsAndRejectsEachBadField) {
  EXPECT_TRUE(fk::validate(fk::TransientOptions{}).ok());

  const auto expect_invalid = [](fk::TransientOptions options) {
    const auto error = fk::validate(options);
    EXPECT_EQ(error.code, ferro::core::ErrorCode::kInvalidScenario);
  };

  fk::TransientOptions o;
  o.dt_initial = 0.0;
  expect_invalid(o);

  o = {};
  o.dt_initial = std::nan("");
  expect_invalid(o);

  o = {};
  o.dt_min = 2.0 * o.dt_initial;  // dt_min above dt_initial
  expect_invalid(o);

  o = {};
  o.t_end = o.t_start;
  expect_invalid(o);

  o = {};
  o.dt_growth = 0.5;
  expect_invalid(o);

  o = {};
  o.engine.max_newton_iterations = 0;
  expect_invalid(o);
}

TEST(Validate, ExplicitDtMaxBelowDtInitialIsRejectedNotClamped) {
  // The pre-PR-10 engine silently clamped this; now it is a configuration
  // error, while dt_max = 0 stays the documented horizon/100 sentinel.
  fk::TransientOptions o;
  o.dt_initial = 1e-6;
  o.dt_max = 1e-7;
  EXPECT_EQ(fk::validate(o).code, ferro::core::ErrorCode::kInvalidScenario);

  o.dt_max = 0.0;
  EXPECT_TRUE(fk::validate(o).ok());
  o.dt_max = 1e-6;  // equal to dt_initial is fine
  EXPECT_TRUE(fk::validate(o).ok());
}

TEST(Transient, InvalidOptionsReportInvalidScenario) {
  auto ckt = make_rc();
  fk::TransientOptions options;
  options.dt_max = options.dt_initial / 10.0;
  std::size_t callbacks = 0;
  const auto error = fk::run_transient(
      ckt, options, [&](const fk::Solution&) { ++callbacks; });
  EXPECT_EQ(error.code, ferro::core::ErrorCode::kInvalidScenario);
  EXPECT_EQ(callbacks, 0u);  // rejected before any device is touched
}

TEST(Transient, PreCancelledLimitsReportCancelled) {
  auto ckt = make_rc();
  fk::TransientOptions options;
  options.t_end = 1e-3;
  ferro::core::RunLimits limits;
  limits.cancel.cancel();
  fk::CircuitStats stats;
  const auto error = fk::run_transient(ckt, options, {}, &stats, limits);
  EXPECT_EQ(error.code, ferro::core::ErrorCode::kCancelled);
}

TEST(Transient, TinyDeadlineReportsDeadlineExceeded) {
  auto ckt = make_rc();
  fk::TransientOptions options;
  options.t_end = 10.0;  // far more work than the budget allows
  options.dt_max = 1e-6;
  ferro::core::RunLimits limits;
  limits.deadline_s = 1e-9;
  const auto error = fk::run_transient(ckt, options, {}, nullptr, limits);
  EXPECT_EQ(error.code, ferro::core::ErrorCode::kDeadlineExceeded);
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Transient, DeprecatedBoolShimsStillWork) {
  // The bool API must keep returning the old true/false contract until its
  // callers are gone; success here means the structured path succeeded too.
  auto ckt = make_rc();
  std::vector<double> x;
  EXPECT_TRUE(fk::dc_operating_point(ckt, x));
  EXPECT_FALSE(x.empty());

  auto ckt2 = make_rc();
  fk::TransientOptions options;
  options.t_end = 1e-3;
  EXPECT_TRUE(fk::transient(ckt2, options, {}));

  auto ckt3 = make_rc();
  options.dt_max = options.dt_initial / 10.0;  // invalid → false, not throw
  EXPECT_FALSE(fk::transient(ckt3, options, {}));
}
#pragma GCC diagnostic pop
