// Edge-case and failure-injection tests for the analogue solver substrate:
// abort paths, breakpoint corner cases, counter behaviour, Gear2 startup.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/transient.hpp"

namespace fa = ferro::ams;

namespace {

/// y' = -k y with a right-hand side that becomes hostile (NaN) after
/// t_break — forces Newton non-convergence for failure-path tests.
class Hostile final : public fa::OdeSystem {
 public:
  explicit Hostile(double t_break) : t_break_(t_break) {}
  [[nodiscard]] std::size_t size() const override { return 1; }
  void initial(std::span<double> y0) const override { y0[0] = 1.0; }
  void derivative(double t, std::span<const double> y,
                  std::span<double> dydt) const override {
    if (t > t_break_) {
      dydt[0] = std::numeric_limits<double>::quiet_NaN();
    } else {
      dydt[0] = -y[0];
    }
  }

 private:
  double t_break_;
};

class Decay final : public fa::OdeSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 1; }
  void initial(std::span<double> y0) const override { y0[0] = 1.0; }
  void derivative(double, std::span<const double> y,
                  std::span<double> dydt) const override {
    dydt[0] = -y[0];
  }
};

/// Counts on_step_accepted invocations (must fire only for accepted steps).
class CountingDecay final : public fa::OdeSystem {
 public:
  [[nodiscard]] std::size_t size() const override { return 1; }
  void initial(std::span<double> y0) const override { y0[0] = 1.0; }
  void derivative(double, std::span<const double> y,
                  std::span<double> dydt) const override {
    dydt[0] = -10.0 * y[0];
  }
  void on_step_accepted(double, std::span<const double>) override {
    ++accepted_hooks;
  }
  int accepted_hooks = 0;
};

}  // namespace

TEST(TransientEdges, AbortOnFailureStopsTheRun) {
  Hostile sys(0.5);
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-2;
  options.abort_on_failure = true;

  fa::TransientSolver solver(options);
  double last_t = 0.0;
  const bool ok = solver.run(
      sys, [&](double t, std::span<const double>) { last_t = t; });
  EXPECT_FALSE(ok);
  EXPECT_GT(solver.stats().hard_failures, 0u);
  EXPECT_LT(last_t, 1.0);  // never reached the horizon
}

TEST(TransientEdges, PersistentFailuresEventuallyGiveUp) {
  // Non-abort mode tolerates isolated convergence failures (force-accept
  // with a warning), but a permanently hostile system must not crawl at
  // dt_min forever: the engine gives up after a bounded streak.
  Hostile sys(0.5);
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-2;
  options.abort_on_failure = false;  // commercial-solver behaviour

  fa::TransientSolver solver(options);
  double last_t = 0.0;
  const bool ok = solver.run(
      sys, [&](double t, std::span<const double>) { last_t = t; });
  EXPECT_FALSE(ok);                             // gave up, reported
  EXPECT_GT(solver.stats().hard_failures, 1u);  // tried more than once
  EXPECT_GT(last_t, 0.4);                       // got to the hostile region
  EXPECT_LT(last_t, 1.0);                       // but not through it
}

TEST(TransientEdges, BreakpointAtStartIsIgnored) {
  Decay sys;
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-3;
  options.breakpoints = {0.0, 0.5};  // 0.0 must not wedge the loop

  fa::TransientSolver solver(options);
  ASSERT_TRUE(solver.run(sys));
  EXPECT_GT(solver.stats().steps_accepted, 10u);
}

TEST(TransientEdges, DuplicateAndOutOfRangeBreakpoints) {
  Decay sys;
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-3;
  options.breakpoints = {0.5, 0.5, 0.5, 2.0, -1.0};

  fa::TransientSolver solver(options);
  std::vector<double> times;
  ASSERT_TRUE(solver.run(
      sys, [&](double t, std::span<const double>) { times.push_back(t); }));
  bool hit = false;
  for (const double t : times) {
    if (std::fabs(t - 0.5) < 1e-9) hit = true;
  }
  EXPECT_TRUE(hit);
  EXPECT_NEAR(times.back(), 1.0, 1e-9);
}

TEST(TransientEdges, AcceptHookFiresOncePerAcceptedStep) {
  CountingDecay sys;
  fa::TransientOptions options;
  options.t_end = 0.5;
  options.dt_initial = 1e-3;

  fa::TransientSolver solver(options);
  int callbacks = 0;
  ASSERT_TRUE(solver.run(
      sys, [&](double, std::span<const double>) { ++callbacks; }));
  // One initial callback at t_start plus one per accepted step.
  EXPECT_EQ(static_cast<std::uint64_t>(callbacks),
            solver.stats().steps_accepted + 1);
  EXPECT_EQ(static_cast<std::uint64_t>(sys.accepted_hooks),
            solver.stats().steps_accepted);
}

TEST(TransientEdges, DtMaxDefaultsToFiftiethOfHorizon) {
  Decay sys;
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1.0;  // asks for one giant step
  options.rel_tol = 1e-1;    // permissive, so LTE won't bite

  fa::TransientSolver solver(options);
  ASSERT_TRUE(solver.run(sys));
  EXPECT_LE(solver.stats().max_dt_used, 1.0 / 50.0 + 1e-12);
  EXPECT_GE(solver.stats().steps_accepted, 50u);
}

TEST(TransientEdges, TightAccuracyCostsSteps) {
  Decay sys;
  const auto steps_at = [&](double rel_tol) {
    fa::TransientOptions options;
    options.t_end = 1.0;
    options.dt_initial = 1e-4;
    options.rel_tol = rel_tol;
    fa::TransientSolver solver(options);
    EXPECT_TRUE(solver.run(sys));
    return solver.stats().steps_accepted;
  };
  EXPECT_GT(steps_at(1e-7), steps_at(1e-3));
}

TEST(TransientEdges, Gear2StartsWithBackwardEuler) {
  // BDF2 needs two history points; the engine must fall back to BE on the
  // first step instead of dividing by a zero previous step.
  Decay sys;
  fa::TransientOptions options;
  options.t_end = 0.1;
  options.dt_initial = 1e-3;
  options.method = fa::IntegrationMethod::kGear2;

  fa::TransientSolver solver(options);
  double y_end = 1.0;
  ASSERT_TRUE(solver.run(sys, [&](double, std::span<const double> y) {
    y_end = y[0];
  }));
  EXPECT_NEAR(y_end, std::exp(-0.1), 1e-3);
}

TEST(TransientEdges, StatsMinMaxDtOrdered) {
  Decay sys;
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-5;
  fa::TransientSolver solver(options);
  ASSERT_TRUE(solver.run(sys));
  EXPECT_GT(solver.stats().min_dt_used, 0.0);
  EXPECT_GE(solver.stats().max_dt_used, solver.stats().min_dt_used);
}
