// Frontend-equivalence tests (CLM4): the SystemC-style process network must
// match the direct TimelessJa bit-for-bit; the VHDL-AMS-style frontend must
// match within solver tolerance; the facade wires them all identically.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "core/ams_ja.hpp"
#include "core/dc_sweep.hpp"
#include "core/facade.hpp"
#include "core/systemc_ja.hpp"
#include "util/constants.hpp"
#include "wave/standard.hpp"
#include "support/fixtures.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;
namespace fh = ferro::hdl;

namespace {
constexpr double kDhmax = 25.0;

fw::HSweep test_sweep() {
  return ferro::testsupport::major_loop(10.0, 1);
}
}  // namespace

TEST(SystemCModel, MatchesDirectModelExactly) {
  const fm::JaParameters params = fm::paper_parameters();
  const fw::HSweep sweep = test_sweep();

  fm::TimelessConfig cfg;
  cfg.dhmax = kDhmax;
  const auto direct = fc::run_dc_sweep(params, cfg, sweep);
  const auto systemc = fc::run_systemc_sweep(params, kDhmax, sweep);

  ASSERT_EQ(direct.curve.size(), systemc.curve.size());
  for (std::size_t i = 0; i < direct.curve.size(); ++i) {
    // Bit-for-bit: both frontends execute the identical arithmetic sequence.
    EXPECT_DOUBLE_EQ(direct.curve.points()[i].b, systemc.curve.points()[i].b)
        << "sample " << i << " h=" << direct.curve.points()[i].h;
    EXPECT_DOUBLE_EQ(direct.curve.points()[i].m, systemc.curve.points()[i].m)
        << "sample " << i;
  }
}

TEST(SystemCModel, TimedModeMatchesUntimed) {
  const fm::JaParameters params = fm::paper_parameters();
  const fw::HSweep sweep = fw::SweepBuilder(50.0).cycles(5e3, 1).build();

  const auto untimed = fc::run_systemc_sweep(params, kDhmax, sweep);
  const auto timed =
      fc::run_systemc_sweep(params, kDhmax, sweep, fh::SimTime::ns(10));

  ASSERT_EQ(untimed.curve.size(), timed.curve.size());
  for (std::size_t i = 0; i < untimed.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(untimed.curve.points()[i].b, timed.curve.points()[i].b);
  }
  EXPECT_GT(timed.kernel_stats.timed_events, 0u);
}

TEST(SystemCModel, KernelActivityIsEventDriven) {
  const fm::JaParameters params = fm::paper_parameters();
  const fw::HSweep sweep = test_sweep();
  const auto result = fc::run_systemc_sweep(params, kDhmax, sweep);

  // core() runs at least once per distinct H sample; monitor/integral only
  // on events. Activations stay well below samples * 3.
  EXPECT_GT(result.kernel_stats.process_activations, sweep.h.size());
  EXPECT_LT(result.kernel_stats.process_activations, sweep.h.size() * 6);
  EXPECT_GT(result.kernel_stats.delta_cycles, sweep.h.size());
}

TEST(SystemCModel, ModuleExposesState) {
  fh::Kernel kernel;
  fc::JaCoreModule module(kernel, "ja", fm::paper_parameters(), kDhmax);
  EXPECT_EQ(module.name(), "ja");
  EXPECT_DOUBLE_EQ(module.m_irr(), 0.0);

  module.H.write(5000.0);
  kernel.settle();
  EXPECT_GT(module.Msig.read(), 0.0);
  EXPECT_GT(module.m_irr(), 0.0);
  EXPECT_NEAR(module.Bsig.read(),
              ferro::util::kMu0 *
                  (module.params().ms * module.Msig.read() + 5000.0),
              1e-12);
}

TEST(AmsModel, MatchesDirectWithinTolerance) {
  const fm::JaParameters params = fm::paper_parameters();
  const fw::Triangular tri(10e3, 0.02);

  fc::AmsJaConfig cfg;
  cfg.t_start = 0.0;
  cfg.t_end = 0.02;
  cfg.timeless.dhmax = kDhmax;
  cfg.solver.dt_initial = 1e-6;
  cfg.solver.rel_tol = 1e-5;
  const auto ams = fc::run_ams_timeless(params, tri, cfg);
  ASSERT_TRUE(ams.completed);
  EXPECT_EQ(ams.solver_stats.hard_failures, 0u);

  fm::TimelessConfig tcfg;
  tcfg.dhmax = kDhmax;
  const fw::HSweep sweep = fw::sweep_from_waveform(tri, 0.0, 0.02, 4001);
  const auto direct = fc::run_dc_sweep(params, tcfg, sweep);

  const fa::CurveDelta delta = fa::compare_by_arc(ams.curve, direct.curve);
  EXPECT_LT(delta.rms_b, 0.05);  // "virtually identical results"
}

TEST(AmsModel, JaNeverEntersSolverResidual) {
  // The excitation quantity is smooth, so the solver should see no Newton
  // failures at all — the defining property of the timeless route.
  const fm::JaParameters params = fm::paper_parameters();
  const fw::Triangular tri(10e3, 0.02);

  fc::AmsJaConfig cfg;
  cfg.t_end = 0.04;
  cfg.timeless.dhmax = kDhmax;
  const auto result = fc::run_ams_timeless(params, tri, cfg);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.solver_stats.steps_rejected_newton, 0u);
  EXPECT_EQ(result.solver_stats.hard_failures, 0u);
  EXPECT_GT(result.stats.field_events, 0u);
}

TEST(DcSweep, StatsAndContinuation) {
  const fm::JaParameters params = fm::paper_parameters();
  fm::TimelessConfig cfg;
  cfg.dhmax = kDhmax;

  const fw::HSweep sweep = test_sweep();
  const auto result = fc::run_dc_sweep(params, cfg, sweep);
  EXPECT_EQ(result.curve.size(), sweep.h.size());
  EXPECT_EQ(result.stats.samples, sweep.h.size());
  EXPECT_GT(result.stats.field_events, 100u);

  // Continuation keeps the magnetic state.
  fm::TimelessJa model(params, cfg);
  (void)fc::continue_dc_sweep(model, sweep);
  const double b_mid = model.flux_density();
  fw::SweepBuilder more(10.0, 10e3);
  more.to(9e3);
  (void)fc::continue_dc_sweep(model, more.build());
  EXPECT_NE(model.flux_density(), b_mid);
}

TEST(DcSweep, Fig1SweepShape) {
  const fw::HSweep sweep = fc::fig1_sweep(10.0);
  double max_h = -1e30, min_h = 1e30;
  for (const double h : sweep.h) {
    max_h = std::max(max_h, h);
    min_h = std::min(min_h, h);
  }
  EXPECT_DOUBLE_EQ(max_h, 10e3);
  EXPECT_DOUBLE_EQ(min_h, -10e3);
  EXPECT_DOUBLE_EQ(sweep.h.back(), 2500.0);
  EXPECT_GE(sweep.turning_points.size(), 7u);
  EXPECT_EQ(fc::fig1_amplitudes().size(), 4u);
}

TEST(Facade, FrontendsAgreeOnSweep) {
  const fc::Facade facade(fm::paper_parameters(), {kDhmax});
  const fw::HSweep sweep = fw::SweepBuilder(25.0).cycles(8e3, 1).build();

  const fm::BhCurve direct = facade.run(sweep, fc::Frontend::kDirect);
  const fm::BhCurve systemc = facade.run(sweep, fc::Frontend::kSystemC);
  ASSERT_EQ(direct.size(), systemc.size());
  const fa::CurveDelta d = fa::compare_pointwise(direct, systemc);
  EXPECT_DOUBLE_EQ(d.max_b, 0.0);

  const fm::BhCurve ams = facade.run(sweep, fc::Frontend::kAms);
  ASSERT_GT(ams.size(), 10u);
  const fa::CurveDelta da = fa::compare_by_arc(direct, ams);
  EXPECT_LT(da.rms_b, 0.05);
}

TEST(Facade, WaveformEntryPoint) {
  const fc::Facade facade(fm::paper_parameters(), {kDhmax});
  const fw::Triangular tri(10e3, 0.02);
  const fm::BhCurve curve =
      facade.run(tri, 0.0, 0.02, 2001, fc::Frontend::kDirect);
  EXPECT_EQ(curve.size(), 2001u);
  const fa::LoopMetrics metrics = fa::analyze_loop(curve);
  EXPECT_GT(metrics.b_peak, 1.0);
}

TEST(Facade, FrontendNames) {
  EXPECT_EQ(fc::to_string(fc::Frontend::kDirect), "direct");
  EXPECT_EQ(fc::to_string(fc::Frontend::kSystemC), "systemc");
  EXPECT_EQ(fc::to_string(fc::Frontend::kAms), "ams");
}
