// Unit tests for the event kernel: delta-cycle semantics, sensitivity,
// timed queue, tracing. These semantics are what make the SystemC-style JA
// module equivalent to the direct TimelessJa — they must be airtight.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hdl/kernel.hpp"
#include "hdl/module.hpp"
#include "hdl/signal.hpp"
#include "hdl/trace.hpp"

namespace fh = ferro::hdl;

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(fh::SimTime::ns(1).femtoseconds(), 1'000'000);
  EXPECT_EQ(fh::SimTime::us(1).femtoseconds(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(fh::SimTime::ms(2).seconds(), 2e-3);
  EXPECT_EQ((fh::SimTime::ns(1) + fh::SimTime::ns(2)).femtoseconds(),
            3'000'000);
  EXPECT_EQ((fh::SimTime::ns(5) - fh::SimTime::ns(2)), fh::SimTime::ns(3));
  EXPECT_EQ(fh::SimTime::ns(3) * 2, fh::SimTime::ns(6));
  EXPECT_LT(fh::SimTime::ps(999), fh::SimTime::ns(1));
  EXPECT_EQ(fh::SimTime::from_seconds(1.5e-9).femtoseconds(), 1'500'000);
}

TEST(Signal, WriteIsDeferredToUpdatePhase) {
  fh::Kernel kernel;
  fh::Signal<int> sig(kernel, "s", 0);

  // Value read back inside the same evaluate phase must be the old one.
  int seen_during_process = -1;
  const auto pid = kernel.register_process("writer", [&] {
    sig.write(42);
    seen_during_process = sig.read();
  });
  kernel.trigger(pid);
  kernel.settle();

  EXPECT_EQ(seen_during_process, 0);
  EXPECT_EQ(sig.read(), 42);
}

TEST(Signal, ChangeWakesSensitiveProcess) {
  fh::Kernel kernel;
  fh::Signal<int> sig(kernel, "s", 0);
  int activations = 0;
  const auto pid = kernel.register_process("listener", [&] { ++activations; });
  kernel.make_sensitive(pid, sig);

  const auto writer = kernel.register_process("writer", [&] { sig.write(7); });
  kernel.trigger(writer);
  kernel.settle();
  EXPECT_EQ(activations, 1);
}

TEST(Signal, NoWakeOnSameValueWrite) {
  fh::Kernel kernel;
  fh::Signal<int> sig(kernel, "s", 7);
  int activations = 0;
  const auto pid = kernel.register_process("listener", [&] { ++activations; });
  kernel.make_sensitive(pid, sig);

  const auto writer = kernel.register_process("writer", [&] { sig.write(7); });
  kernel.trigger(writer);
  kernel.settle();
  EXPECT_EQ(activations, 0);  // value unchanged -> no event
}

TEST(Signal, LastWriteWinsWithinDelta) {
  fh::Kernel kernel;
  fh::Signal<int> sig(kernel, "s", 0);
  const auto writer = kernel.register_process("writer", [&] {
    sig.write(1);
    sig.write(2);
  });
  kernel.trigger(writer);
  kernel.settle();
  EXPECT_EQ(sig.read(), 2);
}

TEST(Signal, BoolToggle) {
  fh::Kernel kernel;
  fh::Signal<bool> sig(kernel, "b", false);
  const auto writer = kernel.register_process("writer", [&] { sig.toggle(); });
  kernel.trigger(writer);
  kernel.settle();
  EXPECT_TRUE(sig.read());
}

TEST(Kernel, DeltaCascadePropagatesThroughChain) {
  // a -> p1 -> b -> p2 -> c: two deltas after the initial write settle.
  fh::Kernel kernel;
  fh::Signal<int> a(kernel, "a", 0), b(kernel, "b", 0), c(kernel, "c", 0);

  const auto p1 = kernel.register_process("p1", [&] { b.write(a.read() + 1); });
  kernel.make_sensitive(p1, a);
  const auto p2 = kernel.register_process("p2", [&] { c.write(b.read() + 1); });
  kernel.make_sensitive(p2, b);

  const auto writer = kernel.register_process("writer", [&] { a.write(5); });
  kernel.trigger(writer);
  kernel.settle();

  EXPECT_EQ(b.read(), 6);
  EXPECT_EQ(c.read(), 7);
}

TEST(Kernel, SettleReportsDeltaCountAndGuardsOscillation) {
  fh::Kernel kernel;
  fh::Signal<int> s(kernel, "osc", 0);
  // Oscillator: always writes a different value -> never settles.
  const auto pid = kernel.register_process("osc", [&] { s.write(s.read() + 1); });
  kernel.make_sensitive(pid, s);
  const auto kick = kernel.register_process("kick", [&] { s.write(1); });
  kernel.trigger(kick);
  const std::size_t deltas = kernel.settle(100);
  EXPECT_EQ(deltas, 100u);  // guard tripped instead of hanging
}

TEST(Kernel, TimedEventsRunInOrder) {
  fh::Kernel kernel;
  std::vector<int> order;
  kernel.schedule_at(fh::SimTime::ns(30), [&] { order.push_back(3); });
  kernel.schedule_at(fh::SimTime::ns(10), [&] { order.push_back(1); });
  kernel.schedule_at(fh::SimTime::ns(20), [&] { order.push_back(2); });
  kernel.run_until(fh::SimTime::ns(100));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(kernel.now(), fh::SimTime::ns(100));
}

TEST(Kernel, RunUntilStopsAtBoundary) {
  fh::Kernel kernel;
  bool late_ran = false;
  kernel.schedule_at(fh::SimTime::ns(50), [&] { late_ran = true; });
  kernel.run_until(fh::SimTime::ns(49));
  EXPECT_FALSE(late_ran);
  kernel.run_until(fh::SimTime::ns(50));
  EXPECT_TRUE(late_ran);
}

TEST(Kernel, SameTimeCallbackScheduledDuringCallbackRuns) {
  fh::Kernel kernel;
  int count = 0;
  kernel.schedule_at(fh::SimTime::ns(10), [&] {
    ++count;
    kernel.schedule_at(fh::SimTime::ns(10), [&] { ++count; });
  });
  kernel.run_until(fh::SimTime::ns(20));
  EXPECT_EQ(count, 2);
}

TEST(Kernel, StatsAccumulate) {
  fh::Kernel kernel;
  fh::Signal<int> s(kernel, "s", 0);
  const auto pid = kernel.register_process("p", [&] { (void)s.read(); });
  kernel.make_sensitive(pid, s);
  const auto w = kernel.register_process("w", [&] { s.write(1); });
  kernel.trigger(w);
  kernel.settle();
  const auto& st = kernel.stats();
  EXPECT_GE(st.delta_cycles, 2u);
  EXPECT_GE(st.process_activations, 2u);
  EXPECT_GE(st.signal_updates, 1u);
}

namespace {

class Doubler final : public fh::Module {
 public:
  Doubler(fh::Kernel& kernel, std::string name)
      : Module(kernel, std::move(name)),
        in(kernel, this->name() + ".in", 0.0),
        out(kernel, this->name() + ".out", 0.0) {
    const auto pid = method("double", [this] { out.write(in.read() * 2.0); });
    sensitive(pid, in);
  }

  fh::Signal<double> in;
  fh::Signal<double> out;
};

}  // namespace

TEST(Module, RegistersNamedProcessWithSensitivity) {
  fh::Kernel kernel;
  Doubler mod(kernel, "dbl");
  EXPECT_EQ(mod.name(), "dbl");

  const auto w = kernel.register_process("w", [&] { mod.in.write(21.0); });
  kernel.trigger(w);
  kernel.settle();
  EXPECT_DOUBLE_EQ(mod.out.read(), 42.0);
}

TEST(Trace, VcdWriterProducesValidStructure) {
  const std::string path = "test_kernel.vcd";
  {
    fh::VcdWriter vcd(path);
    const auto h = vcd.add_real("H");
    const auto b = vcd.add_real("B");
    vcd.begin_time(fh::SimTime::ns(0));
    vcd.value(h, 1.0);
    vcd.value(b, 2.0);
    vcd.begin_time(fh::SimTime::ns(1));
    vcd.value(h, 3.0);
    EXPECT_TRUE(vcd.ok());
  }
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("$timescale 1 fs $end"), std::string::npos);
  EXPECT_NE(text.find("$var real 64 ! H $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("#0"), std::string::npos);
  EXPECT_NE(text.find("#1000000"), std::string::npos);
  EXPECT_NE(text.find("r1 !"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Trace, CsvTracerSamplesSignals) {
  const std::string path = "test_kernel_trace.csv";
  fh::Kernel kernel;
  fh::Signal<double> s(kernel, "sig", 1.5);
  {
    fh::CsvTracer tracer(path);
    tracer.add(s);
    tracer.sample(fh::SimTime::ns(0));
    tracer.sample(fh::SimTime::ns(1));
    EXPECT_TRUE(tracer.write());
  }
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,sig");
  std::filesystem::remove(path);
}
