// The shard-transport wire format (core/wire.hpp): bitwise round trips for
// every Scenario/ScenarioResult field across all three frontends and both
// model kinds, the full waveform registry, and structured rejection of
// truncated, corrupt, and cross-version frames. The round trips are the
// foundation of Isolation::kProcess's parity contract — a worker decoding a
// scenario must run exactly the job the supervisor encoded.
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/error.hpp"
#include "core/scenario.hpp"
#include "core/wire.hpp"
#include "wave/pwl.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace {

using namespace ferro;
using namespace ferro::core;

// Bit-level double equality: NaN payloads and signed zeros must survive the
// wire unchanged, which operator== cannot express.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

wire::Buffer encode(const Scenario& s) {
  wire::Buffer buf;
  wire::Writer w(buf);
  EXPECT_TRUE(wire::encode_scenario(s, w));
  return buf;
}

Scenario round_trip(const Scenario& s) {
  const wire::Buffer buf = encode(s);
  wire::Reader r(buf);
  Scenario out = wire::decode_scenario(r);
  EXPECT_TRUE(r.exhausted()) << "decoder must consume the whole payload";
  return out;
}

// A waveform type the registry does not know — the in-process-fallback case.
struct AlienWaveform final : wave::Waveform {
  [[nodiscard]] double value(double) const override { return 0.0; }
  [[nodiscard]] double derivative(double) const override { return 0.0; }
};

TEST(WireScenario, HSweepJaRoundTripsEveryField) {
  Scenario s;
  s.name = "ja/h-sweep with \"quotes\" and \n newline";
  JaSpec spec;
  spec.params.ms = 1.234e6;
  spec.params.a = 1821.5;
  spec.params.k = 3999.25;
  spec.params.c = 0.125;
  spec.params.alpha = 0.0030517578125;
  spec.params.a2 = 3456.78;
  spec.params.blend = 0.4375;
  spec.params.kind = mag::AnhystereticKind::kDualAtan;
  spec.config.dhmax = 12.5;
  spec.config.substep_max = 7.25;
  spec.config.scheme = mag::HIntegrator::kRk4;
  spec.config.clamp_negative_slope = false;
  spec.config.clamp_direction = false;
  s.model = spec;
  s.drive = wave::SweepBuilder(10.0).cycles(5000.0, 2).build();
  s.frontend = Frontend::kSystemC;
  s.metrics_window = MetricsWindow{17, 421};

  const Scenario out = round_trip(s);

  EXPECT_EQ(out.name, s.name);
  ASSERT_TRUE(std::holds_alternative<JaSpec>(out.model));
  const JaSpec& got = out.ja();
  EXPECT_TRUE(same_bits(got.params.ms, spec.params.ms));
  EXPECT_TRUE(same_bits(got.params.a, spec.params.a));
  EXPECT_TRUE(same_bits(got.params.k, spec.params.k));
  EXPECT_TRUE(same_bits(got.params.c, spec.params.c));
  EXPECT_TRUE(same_bits(got.params.alpha, spec.params.alpha));
  EXPECT_TRUE(same_bits(got.params.a2, spec.params.a2));
  EXPECT_TRUE(same_bits(got.params.blend, spec.params.blend));
  EXPECT_EQ(got.params.kind, spec.params.kind);
  EXPECT_TRUE(same_bits(got.config.dhmax, spec.config.dhmax));
  EXPECT_TRUE(same_bits(got.config.substep_max, spec.config.substep_max));
  EXPECT_EQ(got.config.scheme, spec.config.scheme);
  EXPECT_EQ(got.config.clamp_negative_slope, spec.config.clamp_negative_slope);
  EXPECT_EQ(got.config.clamp_direction, spec.config.clamp_direction);

  const auto& in_sweep = std::get<wave::HSweep>(s.drive);
  ASSERT_TRUE(std::holds_alternative<wave::HSweep>(out.drive));
  const auto& out_sweep = std::get<wave::HSweep>(out.drive);
  ASSERT_EQ(out_sweep.h.size(), in_sweep.h.size());
  for (std::size_t i = 0; i < in_sweep.h.size(); ++i) {
    ASSERT_TRUE(same_bits(out_sweep.h[i], in_sweep.h[i])) << "sample " << i;
  }
  EXPECT_EQ(out_sweep.turning_points, in_sweep.turning_points);

  EXPECT_EQ(out.frontend, Frontend::kSystemC);
  ASSERT_TRUE(out.metrics_window.has_value());
  EXPECT_EQ(out.metrics_window->begin, 17u);
  EXPECT_EQ(out.metrics_window->end, 421u);
}

TEST(WireScenario, FluxDriveEnergyRoundTripsEveryField) {
  Scenario s;
  s.name = "energy/flux-drive";
  EnergySpec spec;
  spec.params.ms = 1.5e6;
  spec.params.a = 2221.0;
  spec.params.a2 = 3300.0;
  spec.params.blend = 0.75;
  spec.params.kind = mag::AnhystereticKind::kClassicLangevin;
  spec.params.cells = 12;
  spec.params.kappa_max = 3800.0;
  spec.params.pinning_decay = 1.5;
  spec.params.c_rev = 0.0625;
  spec.params.tau_dyn = 0.0;
  s.model = spec;
  FluxDrive drive;
  drive.b = {0.0, 0.5, 1.0, 0.5, 0.0, -0.5, -1.0};
  drive.tolerance_b = 2.5e-10;
  drive.max_iterations = 37;
  s.drive = drive;
  s.frontend = Frontend::kDirect;

  const Scenario out = round_trip(s);

  ASSERT_TRUE(std::holds_alternative<EnergySpec>(out.model));
  const EnergySpec& got = out.energy();
  EXPECT_TRUE(same_bits(got.params.ms, spec.params.ms));
  EXPECT_TRUE(same_bits(got.params.a, spec.params.a));
  EXPECT_TRUE(same_bits(got.params.a2, spec.params.a2));
  EXPECT_TRUE(same_bits(got.params.blend, spec.params.blend));
  EXPECT_EQ(got.params.kind, spec.params.kind);
  EXPECT_EQ(got.params.cells, spec.params.cells);
  EXPECT_TRUE(same_bits(got.params.kappa_max, spec.params.kappa_max));
  EXPECT_TRUE(same_bits(got.params.pinning_decay, spec.params.pinning_decay));
  EXPECT_TRUE(same_bits(got.params.c_rev, spec.params.c_rev));
  EXPECT_TRUE(same_bits(got.params.tau_dyn, spec.params.tau_dyn));

  ASSERT_TRUE(std::holds_alternative<FluxDrive>(out.drive));
  const auto& got_drive = std::get<FluxDrive>(out.drive);
  ASSERT_EQ(got_drive.b.size(), drive.b.size());
  for (std::size_t i = 0; i < drive.b.size(); ++i) {
    EXPECT_TRUE(same_bits(got_drive.b[i], drive.b[i]));
  }
  EXPECT_TRUE(same_bits(got_drive.tolerance_b, drive.tolerance_b));
  EXPECT_EQ(got_drive.max_iterations, drive.max_iterations);
  EXPECT_FALSE(out.metrics_window.has_value());
}

TEST(WireScenario, EveryRegisteredWaveformRoundTripsBitwise) {
  std::vector<std::shared_ptr<const wave::Waveform>> shapes = {
      std::make_shared<wave::Constant>(3.5),
      std::make_shared<wave::Ramp>(1500.0, -250.0),
      std::make_shared<wave::Step>(-100.0, 5000.0, 0.25),
      std::make_shared<wave::Sine>(5000.0, 50.0, 0.1, 12.0),
      std::make_shared<wave::DampedSine>(5000.0, 50.0, 0.02, 0.1),
      std::make_shared<wave::Triangular>(5000.0, 0.02, 10.0),
      std::make_shared<wave::Sawtooth>(5000.0, 0.02, -10.0),
      std::make_shared<wave::Pwl>(std::vector<wave::PwlPoint>{
          {0.0, 0.0}, {0.25, 5000.0}, {0.75, -5000.0}, {1.0, 0.0}}),
  };

  for (std::size_t k = 0; k < shapes.size(); ++k) {
    Scenario s;
    s.name = "wave#" + std::to_string(k);
    TimeDrive drive;
    drive.waveform = shapes[k];
    drive.t0 = 0.125;
    drive.t1 = 0.875;
    drive.n_samples = 333;
    s.drive = drive;
    s.frontend = Frontend::kAms;

    ASSERT_TRUE(wire::serializable(s)) << "shape " << k;
    const Scenario out = round_trip(s);

    ASSERT_TRUE(std::holds_alternative<TimeDrive>(out.drive)) << "shape " << k;
    const auto& got = std::get<TimeDrive>(out.drive);
    EXPECT_TRUE(same_bits(got.t0, drive.t0));
    EXPECT_TRUE(same_bits(got.t1, drive.t1));
    EXPECT_EQ(got.n_samples, drive.n_samples);
    EXPECT_EQ(out.frontend, Frontend::kAms);
    ASSERT_NE(got.waveform, nullptr);
    // The reconstructed waveform must evaluate bit-identically — this is
    // what makes a worker-side run bitwise equal to an in-process run.
    for (int i = 0; i <= 64; ++i) {
      const double t = drive.t0 + (drive.t1 - drive.t0) * i / 64.0;
      ASSERT_TRUE(same_bits(got.waveform->value(t), shapes[k]->value(t)))
          << "shape " << k << " at t=" << t;
    }
  }
}

TEST(WireScenario, NanPayloadBitsSurviveTheWire) {
  // A quiet NaN with a distinctive payload: if the codec ever converts
  // doubles through text or arithmetic, the payload bits collapse.
  const double nan_with_payload =
      std::bit_cast<double>(0x7ff8dead'beef1234ULL);
  Scenario s;
  s.name = "nan";
  s.drive = wave::HSweep{{0.0, nan_with_payload, -0.0}, {1}};

  const Scenario out = round_trip(s);
  const auto& h = std::get<wave::HSweep>(out.drive).h;
  ASSERT_EQ(h.size(), 3u);
  EXPECT_TRUE(same_bits(h[1], nan_with_payload));
  EXPECT_TRUE(same_bits(h[2], -0.0)) << "signed zero must survive too";
}

TEST(WireScenario, AlienWaveformIsNotSerializable) {
  Scenario s;
  s.name = "alien";
  TimeDrive drive;
  drive.waveform = std::make_shared<AlienWaveform>();
  s.drive = drive;

  EXPECT_FALSE(wire::serializable(s));
  wire::Buffer buf;
  wire::Writer w(buf);
  EXPECT_FALSE(wire::encode_scenario(s, w));

  // Everything else on the scenario stays serializable.
  s.drive = wave::HSweep{{0.0, 1.0}, {}};
  EXPECT_TRUE(wire::serializable(s));
}

TEST(WireResult, RoundTripsCurveMetricsStatsAndError) {
  ScenarioResult r;
  r.name = "result/one";
  r.model = mag::ModelKind::kEnergyBased;
  r.curve.append(1.0, 2.0, 3.0);
  r.curve.append(std::bit_cast<double>(0x7ff80000'00000042ULL), -0.0, 1e300);
  r.metrics = {5000.0, 1.8, 0.9, 1200.0, 4321.5, 777};
  r.stats = {10, 20, 30, 40, 50};
  r.energy_stats = {100, 200, 300, 1.25e-3};
  r.error = {ErrorCode::kSolverDiverged, "ams solver rejected the step"};

  wire::Buffer buf;
  wire::Writer w(buf);
  wire::encode_result(r, w);
  wire::Reader reader(buf);
  const ScenarioResult out = wire::decode_result(reader);
  EXPECT_TRUE(reader.exhausted());

  EXPECT_EQ(out.name, r.name);
  EXPECT_EQ(out.model, r.model);
  ASSERT_EQ(out.curve.size(), r.curve.size());
  for (std::size_t i = 0; i < r.curve.size(); ++i) {
    const auto& a = r.curve.points()[i];
    const auto& b = out.curve.points()[i];
    EXPECT_TRUE(same_bits(a.h, b.h));
    EXPECT_TRUE(same_bits(a.m, b.m));
    EXPECT_TRUE(same_bits(a.b, b.b));
  }
  EXPECT_TRUE(same_bits(out.metrics.h_peak, r.metrics.h_peak));
  EXPECT_TRUE(same_bits(out.metrics.area, r.metrics.area));
  EXPECT_EQ(out.metrics.points, r.metrics.points);
  EXPECT_EQ(out.stats.samples, r.stats.samples);
  EXPECT_EQ(out.stats.direction_clamps, r.stats.direction_clamps);
  EXPECT_EQ(out.energy_stats.cell_updates, r.energy_stats.cell_updates);
  EXPECT_TRUE(
      same_bits(out.energy_stats.dissipated_energy,
                r.energy_stats.dissipated_energy));
  EXPECT_EQ(out.error, r.error);
}

TEST(WireDecode, TruncatedPayloadThrowsStructuredError) {
  Scenario s;
  s.name = "truncate-me";
  s.drive = wave::SweepBuilder(10.0).cycles(1000.0, 1).build();
  const wire::Buffer buf = encode(s);

  // Every proper prefix must be rejected by the bounds-checked Reader, not
  // read out of bounds or silently zero-filled.
  for (std::size_t cut = 0; cut < buf.size(); cut += 7) {
    wire::Buffer clipped(buf.begin(), buf.begin() + cut);
    wire::Reader r(clipped);
    EXPECT_THROW((void)wire::decode_scenario(r), wire::DecodeError)
        << "prefix of " << cut << " bytes";
  }
}

TEST(WireDecode, OutOfRangeEnumsAreRejected) {
  Scenario s;
  s.name = "x";
  s.drive = wave::HSweep{{0.0, 1.0}, {}};
  wire::Buffer buf = encode(s);

  // The frontend byte is the last field before the metrics-window flag; a
  // cheap way to hit an enum guard without hand-assembling payloads is to
  // corrupt every byte position and require that nothing decodes to success
  // with trailing bytes unconsumed or crashes — structured DecodeError or a
  // clean decode are the only acceptable outcomes.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    wire::Buffer corrupt = buf;
    corrupt[i] = static_cast<std::uint8_t>(corrupt[i] ^ 0xff);
    wire::Reader r(corrupt);
    try {
      (void)wire::decode_scenario(r);
    } catch (const wire::DecodeError&) {
      // structured rejection — good
    }
  }
}

class WirePipe : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(::pipe(fds_), 0); }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void close_write() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(WirePipe, FrameRoundTripsOverAPipe) {
  wire::Buffer payload = {1, 2, 3, 4, 5, 0xff, 0x00, 0x80};
  ASSERT_TRUE(
      wire::write_frame(fds_[1], wire::FrameType::kResult, payload).ok());

  wire::Frame frame;
  ASSERT_TRUE(wire::read_frame(fds_[0], frame).ok());
  EXPECT_EQ(frame.type, wire::FrameType::kResult);
  EXPECT_EQ(frame.payload, payload);
}

TEST_F(WirePipe, EofAtFrameBoundaryIsDistinguishable) {
  close_write();
  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_TRUE(wire::is_eof(e)) << e.detail;
}

TEST_F(WirePipe, TruncatedHeaderIsNotACleanEof) {
  const std::uint8_t partial[5] = {0x46, 0x57, 0x52, 0x31, 0x01};
  ASSERT_TRUE(wire::write_all(fds_[1], partial, sizeof(partial)).ok());
  close_write();

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_FALSE(wire::is_eof(e)) << "mid-header death is truncation: "
                                << e.detail;
}

TEST_F(WirePipe, CorruptPayloadFailsTheChecksum) {
  wire::Buffer payload(64, 0xab);
  wire::Buffer bytes = wire::encode_frame(wire::FrameType::kShard, payload);
  bytes[wire::kHeaderSize + 17] ^= 0x01;  // one flipped payload bit
  ASSERT_TRUE(wire::write_all(fds_[1], bytes.data(), bytes.size()).ok());

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_NE(e.detail.find("checksum"), std::string::npos) << e.detail;
}

TEST_F(WirePipe, BadMagicIsRejected) {
  wire::Buffer bytes = wire::encode_frame(wire::FrameType::kShard, {});
  bytes[0] ^= 0xff;
  ASSERT_TRUE(wire::write_all(fds_[1], bytes.data(), bytes.size()).ok());

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_NE(e.detail.find("magic"), std::string::npos) << e.detail;
}

TEST_F(WirePipe, CrossVersionFrameIsRejectedCleanly) {
  wire::Buffer bytes = wire::encode_frame(wire::FrameType::kShard, {});
  bytes[4] = 0x02;  // version u16 low byte: v2 peer
  ASSERT_TRUE(wire::write_all(fds_[1], bytes.data(), bytes.size()).ok());

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_NE(e.detail.find("cross-version"), std::string::npos) << e.detail;
  EXPECT_NE(e.detail.find("v2"), std::string::npos) << e.detail;
}

TEST_F(WirePipe, UnknownFrameTypeIsRejected) {
  wire::Buffer bytes = wire::encode_frame(wire::FrameType::kShard, {});
  bytes[6] = 0x2a;  // type u16 low byte: type 42
  ASSERT_TRUE(wire::write_all(fds_[1], bytes.data(), bytes.size()).ok());

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_NE(e.detail.find("frame type"), std::string::npos) << e.detail;
}

TEST_F(WirePipe, OversizePayloadLengthIsRejectedWithoutAllocating) {
  wire::Buffer header;
  wire::Writer w(header);
  w.u32(wire::kMagic);
  w.u16(wire::kVersion);
  w.u16(static_cast<std::uint16_t>(wire::FrameType::kShard));
  w.u64(wire::kMaxPayload + 1);  // a corrupt length field
  w.u64(0);
  ASSERT_TRUE(wire::write_all(fds_[1], header.data(), header.size()).ok());

  wire::Frame frame;
  const Error e = wire::read_frame(fds_[0], frame);
  EXPECT_EQ(e.code, ErrorCode::kWireError);
  EXPECT_NE(e.detail.find("exceeds cap"), std::string::npos) << e.detail;
}

TEST(WireReader, UnderrunThrowsAndExhaustedTracks) {
  wire::Buffer buf;
  wire::Writer w(buf);
  w.u32(7);
  w.str("abc");

  wire::Reader r(buf);
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.str(), "abc");
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW((void)r.u8(), wire::DecodeError);
}

}  // namespace
