// EnergyBased unit tests: the analytic play-operator staircase (single-cell
// closed forms), the pinning-dissipation bookkeeping (including the
// loop-area identity a dissipation functional must satisfy), the dynamic
// excess-loss term, parameter validation, and the committed golden curve
// (tests/support/gen_energy_golden.cpp).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "mag/anhysteretic.hpp"
#include "mag/bh.hpp"
#include "mag/energy_based.hpp"
#include "support/fixtures.hpp"
#include "util/constants.hpp"
#include "util/csv.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fa = ferro::analysis;
namespace fu = ferro::util;
namespace ts = ferro::testsupport;

namespace {

/// One play cell carrying the whole hysteretic branch: kappa_0 = kappa_max,
/// omega_0 = 1 - c_rev. Every state is a closed form, which is what makes
/// the staircase assertions below analytic instead of golden.
fm::EnergyBasedParams single_cell() {
  fm::EnergyBasedParams p = fm::energy_reference_parameters();
  p.cells = 1;
  return p;
}

}  // namespace

TEST(EnergyValidate, ReferenceParametersAreValid) {
  EXPECT_TRUE(fm::energy_reference_parameters().is_valid());
  EXPECT_TRUE(fm::EnergyBasedParams{}.is_valid());
}

TEST(EnergyValidate, RejectsDegenerateParameters) {
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.cells = 0;
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.kappa_max = -1.0;
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.c_rev = 1.0;  // the reversible branch may not carry everything
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.tau_dyn = -1e-6;
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.ms = std::nan("");
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.kind = fm::AnhystereticKind::kDualAtan;
    p.blend = 2.0;
    EXPECT_FALSE(p.is_valid());
  }
  {
    fm::EnergyBasedParams p = fm::energy_reference_parameters();
    p.pinning_decay = -0.5;
    EXPECT_FALSE(p.is_valid());
  }
}

TEST(EnergyPlay, CellStaysPinnedBelowThreshold) {
  // |h| <= kappa: the cell never yields, so the response is purely the
  // reversible branch c_rev * man(h).
  const fm::EnergyBasedParams p = single_cell();
  fm::EnergyBased model(p);
  const fm::Anhysteretic an(p.kind, p.a, p.a2, p.blend);

  const double h = 0.5 * p.kappa_max;
  const double m = model.apply(h);
  EXPECT_DOUBLE_EQ(m, p.c_rev * an.man(h));
  EXPECT_EQ(model.stats().cell_updates, 0u);
  EXPECT_EQ(model.stats().pinned_samples, 1u);
  EXPECT_DOUBLE_EQ(model.state().xi[0], 0.0);
  EXPECT_DOUBLE_EQ(model.stats().dissipated_energy, 0.0);
}

TEST(EnergyPlay, YieldFollowsFieldMinusKappa) {
  // h > kappa drags the play state to xi = h - kappa; the magnetisation is
  // the closed-form superposition of both branches.
  const fm::EnergyBasedParams p = single_cell();
  fm::EnergyBased model(p);
  const fm::Anhysteretic an(p.kind, p.a, p.a2, p.blend);

  const double h = 2.0 * p.kappa_max;
  const double m = model.apply(h);
  EXPECT_DOUBLE_EQ(model.state().xi[0], h - p.kappa_max);
  EXPECT_DOUBLE_EQ(
      m, p.c_rev * an.man(h) + (1.0 - p.c_rev) * an.man(h - p.kappa_max));
  EXPECT_EQ(model.stats().cell_updates, 1u);

  // Reversal: the cell re-pins until the field has dropped 2*kappa below
  // the turning point, then follows h + kappa on the way down — the
  // staircase's descending tread.
  const double xi_turn = model.state().xi[0];
  model.apply(h - p.kappa_max);  // still inside the dead zone
  EXPECT_DOUBLE_EQ(model.state().xi[0], xi_turn);
  const double h_down = h - 3.0 * p.kappa_max;
  model.apply(h_down);  // past the dead zone: yields downward
  EXPECT_DOUBLE_EQ(model.state().xi[0], h_down + p.kappa_max);
}

TEST(EnergyPlay, DissipationAccountsEveryYieldExactly) {
  const fm::EnergyBasedParams p = single_cell();
  fm::EnergyBased model(p);
  const fm::Anhysteretic an(p.kind, p.a, p.a2, p.blend);
  const double omega = 1.0 - p.c_rev;

  // First yield: xi moves 0 -> kappa, dM_0 = ms * omega * (man(kappa) - 0).
  model.apply(2.0 * p.kappa_max);
  const double expected =
      fu::kMu0 * p.ms * p.kappa_max * omega * an.man(p.kappa_max);
  EXPECT_DOUBLE_EQ(model.stats().dissipated_energy, expected);

  // A pinned sample adds nothing.
  model.apply(1.5 * p.kappa_max);
  EXPECT_DOUBLE_EQ(model.stats().dissipated_energy, expected);
}

TEST(EnergyPlay, SteadyStateLoopAreaEqualsPinningDissipation) {
  // The defining property of a dissipation functional: over one closed
  // cycle in steady state, the BH loop area (J/m^3 per cycle) equals the
  // pinning energy the model accounted — measured, not inferred.
  const fm::EnergyBasedParams p = fm::energy_reference_parameters();
  fm::EnergyBased model(p);
  const double step = 5.0;
  const double amplitude = 10e3;
  const ferro::wave::HSweep sweep =
      ferro::wave::SweepBuilder(step).cycles(amplitude, 3).build();

  // A closed steady-state contour: the sweep ends at +A, so the window
  // [n - 1 - 2*leg, n - 1] is exactly the last +A -> -A -> +A cycle.
  const auto leg = static_cast<std::size_t>(std::lround(2.0 * amplitude / step));
  const std::size_t begin = sweep.size() - 1 - 2 * leg;
  fm::BhCurve curve;
  double diss_before = 0.0;
  for (std::size_t i = 0; i < sweep.h.size(); ++i) {
    model.apply(sweep.h[i]);
    if (i == begin) diss_before = model.stats().dissipated_energy;
    curve.append(sweep.h[i], model.magnetisation(), model.flux_density());
  }
  const double diss_cycle = model.stats().dissipated_energy - diss_before;
  const fa::LoopMetrics metrics =
      fa::analyze_loop(curve, begin, sweep.size() - 1);
  ASSERT_GT(metrics.area, 0.0);
  EXPECT_NEAR(diss_cycle / metrics.area, 1.0, 0.02);
}

TEST(EnergyPlay, MagnetisationStaysNormalised) {
  const fm::EnergyBasedParams p = fm::energy_reference_parameters();
  fm::EnergyBased model(p);
  for (const double h : {1e5, -1e5, 1e7, -1e7}) {
    const double m = model.apply(h);
    EXPECT_LE(std::fabs(m), 1.0);
    EXPECT_LE(std::fabs(model.magnetisation()), p.ms);
  }
}

TEST(EnergyDynamic, TauZeroTimeAwareApplyIsBitwiseQuasiStatic) {
  const fm::EnergyBasedParams p = fm::energy_reference_parameters();
  fm::EnergyBased timed(p);
  fm::EnergyBased plain(p);
  const ferro::wave::HSweep sweep = ts::major_loop(25.0, 1);
  for (const double h : sweep.h) {
    EXPECT_EQ(timed.apply(h, 1e-4), plain.apply(h));
  }
  EXPECT_EQ(timed.stats().dissipated_energy, plain.stats().dissipated_energy);
}

TEST(EnergyDynamic, ExcessLossTermWidensTheLoop) {
  // Moll et al.'s rate-dependent term: with tau_dyn > 0 the cells see a
  // lagged field, so the same excitation traced faster dissipates more.
  fm::EnergyBasedParams p = fm::energy_reference_parameters();
  p.tau_dyn = 2e-3;
  fm::EnergyBased dynamic(p);
  fm::EnergyBased quasi(fm::energy_reference_parameters());

  const ferro::wave::HSweep sweep =
      ferro::wave::SweepBuilder(25.0).cycles(10e3, 2).build();
  const double dt = 1e-5;  // a fast ramp: rate matters
  fm::BhCurve curve_dyn;
  fm::BhCurve curve_qs;
  for (const double h : sweep.h) {
    dynamic.apply(h, dt);
    curve_dyn.append(h, dynamic.magnetisation(), dynamic.flux_density());
    quasi.apply(h);
    curve_qs.append(h, quasi.magnetisation(), quasi.flux_density());
  }
  const std::size_t n = curve_dyn.size();
  const double area_dyn = fa::analyze_loop(curve_dyn, n / 2, n - 1).area;
  const double area_qs = fa::analyze_loop(curve_qs, n / 2, n - 1).area;
  EXPECT_GT(area_dyn, area_qs * 1.01);
}

// ---------------------------------------------------------------------------
// Golden artefact: tests/data/energy_staircase.csv
// ---------------------------------------------------------------------------

namespace {

fm::BhCurve load_golden() {
  const fu::CsvTable table = fu::read_csv(ts::data_path("energy_staircase.csv"));
  fm::BhCurve curve;
  const int ih = table.column_index("h");
  const int im = table.column_index("m");
  const int ib = table.column_index("b");
  EXPECT_GE(ih, 0);
  EXPECT_GE(im, 0);
  EXPECT_GE(ib, 0);
  if (ih < 0 || im < 0 || ib < 0) return curve;
  for (const auto& row : table.rows) {
    curve.append(row[static_cast<std::size_t>(ih)],
                 row[static_cast<std::size_t>(im)],
                 row[static_cast<std::size_t>(ib)]);
  }
  return curve;
}

fm::BhCurve regenerate() {
  fm::EnergyBased model(fm::energy_reference_parameters());
  return fm::run_sweep(model, ts::major_loop(10.0, 2));
}

}  // namespace

TEST(EnergyGolden, CommittedFileLoads) {
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 1000u)
      << "tests/data/energy_staircase.csv missing or truncated — regenerate "
         "with ./build/gen_energy_golden";
}

TEST(EnergyGolden, ModelReproducesCommittedCurve) {
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 0u);
  const fm::BhCurve live = regenerate();
  ASSERT_EQ(live.size(), golden.size());

  const fa::CurveDelta d = fa::compare_pointwise(live, golden);
  // Only the CSV's 12-significant-digit rounding should separate them.
  EXPECT_LT(d.rms_b, 1e-6);
  EXPECT_LT(d.max_b, 1e-5);
  EXPECT_LT(d.rms_m, 1.0);
}

TEST(EnergyGolden, CommittedCurveIsAHysteresisLoop) {
  // Tie the artefact itself to the physics, so a silently
  // regenerated-but-wrong golden cannot pass: a real loop of the reference
  // material, comparable in width/saturation to the JA pairing.
  const fm::BhCurve golden = load_golden();
  ASSERT_GT(golden.size(), 0u);
  const std::size_t n = golden.size();
  const fa::LoopMetrics metrics = fa::analyze_loop(golden, n / 2, n - 1);
  EXPECT_DOUBLE_EQ(metrics.h_peak, 10e3);
  EXPECT_GT(metrics.b_peak, 1.0);
  EXPECT_LT(metrics.b_peak, 2.2);
  EXPECT_GT(metrics.coercivity, 200.0);
  EXPECT_LT(metrics.coercivity, 5000.0);
  EXPECT_GT(metrics.remanence, 0.2);
  EXPECT_GT(metrics.area, 0.0);
}
