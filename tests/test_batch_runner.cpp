// BatchRunner: deterministic ordering, thread-count invariance, serial
// fallback, per-job error capture, and the scenario unit itself.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "core/batch_runner.hpp"
#include "core/dc_sweep.hpp"
#include "mag/ja_params.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;
namespace ts = ferro::testsupport;

namespace {

/// A small heterogeneous workload: every library material, mixed dhmax.
std::vector<fc::Scenario> material_workload(std::size_t count) {
  const auto& library = fm::material_library();
  std::vector<fc::Scenario> scenarios;
  for (std::size_t i = 0; i < count; ++i) {
    const auto& material = library[i % library.size()];
    fc::Scenario s;
    s.name = material.name + "#" + std::to_string(i);
    s.ja().params = material.params;
    s.ja().config.dhmax = (material.params.a + material.params.k) /
                     (200.0 + 50.0 * static_cast<double>(i % 4));
    fw::HSweep sweep = ts::saturating_major_loop(material.params);
    s.metrics_window = fc::MetricsWindow{sweep.size() / 2, sweep.size() - 1};
    s.drive = std::move(sweep);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

void expect_identical(const std::vector<fc::ScenarioResult>& a,
                      const std::vector<fc::ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].error, b[i].error);
    ASSERT_EQ(a[i].curve.size(), b[i].curve.size()) << a[i].name;
    for (std::size_t j = 0; j < a[i].curve.size(); ++j) {
      const auto& pa = a[i].curve.points()[j];
      const auto& pb = b[i].curve.points()[j];
      // Bitwise equality: scheduling must not reorder any arithmetic.
      ASSERT_EQ(pa.h, pb.h) << a[i].name << " point " << j;
      ASSERT_EQ(pa.m, pb.m) << a[i].name << " point " << j;
      ASSERT_EQ(pa.b, pb.b) << a[i].name << " point " << j;
    }
    EXPECT_EQ(a[i].metrics.area, b[i].metrics.area) << a[i].name;
  }
}

}  // namespace

TEST(BatchRunner, EmptyBatchYieldsEmptyResults) {
  EXPECT_TRUE(fc::BatchRunner().run({}).empty());
}

TEST(BatchRunner, ResultsArriveInScenarioOrder) {
  const auto scenarios = material_workload(12);
  const auto results = fc::BatchRunner({.threads = 4}).run(scenarios);
  ASSERT_EQ(results.size(), scenarios.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, scenarios[i].name);
    EXPECT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_GT(results[i].curve.size(), 0u);
    EXPECT_GT(results[i].metrics.area, 0.0);
  }
}

TEST(BatchRunner, ThreadCountInvariance) {
  const auto scenarios = material_workload(16);
  const auto serial = fc::BatchRunner({.threads = 1}).run(scenarios);
  for (const unsigned threads : {2u, 3u, 4u, 8u, 0u}) {
    const auto parallel = fc::BatchRunner({.threads = threads}).run(scenarios);
    expect_identical(serial, parallel);
  }
}

TEST(BatchRunner, SerialMatchesRunScenario) {
  const auto scenarios = material_workload(4);
  const auto batch = fc::BatchRunner({.threads = 1}).run(scenarios);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const fc::ScenarioResult solo = fc::run_scenario(scenarios[i]);
    ASSERT_EQ(solo.curve.size(), batch[i].curve.size());
    for (std::size_t j = 0; j < solo.curve.size(); ++j) {
      EXPECT_EQ(solo.curve.points()[j].b, batch[i].curve.points()[j].b);
    }
  }
}

TEST(BatchRunner, InvalidParametersAreCapturedPerJob) {
  auto scenarios = material_workload(3);
  scenarios[1].ja().params.c = 1.5;  // reversibility must satisfy 0 <= c < 1
  scenarios[1].name = "broken";

  const auto results = fc::BatchRunner({.threads = 2}).run(scenarios);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.detail.find("invalid parameters"), std::string::npos)
      << results[1].error;
  EXPECT_TRUE(results[1].curve.empty());
  EXPECT_TRUE(results[2].ok()) << results[2].error;
}

TEST(BatchRunner, MissingWaveformIsCaptured) {
  fc::Scenario s;
  s.name = "no-waveform";
  s.ja().params = fm::paper_parameters();
  s.drive = fc::TimeDrive{};  // null waveform
  const auto result = fc::run_scenario(s);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.detail.find("waveform"), std::string::npos) << result.error;
}

TEST(BatchRunner, EmptyMetricsWindowIsCaptured) {
  fc::Scenario s;
  s.name = "bad-window";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  s.drive = ts::major_loop(10.0, 1);
  s.metrics_window = fc::MetricsWindow{500, 500};
  const auto result = fc::run_scenario(s);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.detail.find("metrics window"), std::string::npos)
      << result.error;
  // The curve itself still completed before the metrics step failed.
  EXPECT_GT(result.curve.size(), 0u);
}

TEST(BatchRunner, OversizedMetricsWindowIsCapturedNotClamped) {
  // A window that does not fit the produced curve (e.g. sized from the input
  // sweep of a kAms job, whose solver picks its own steps) must surface as a
  // per-job error — silently clamping would compute metrics over the wrong
  // slice.
  fc::Scenario s;
  s.name = "oversized-window";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  const fw::HSweep sweep = ts::major_loop(10.0, 1);
  s.metrics_window = fc::MetricsWindow{0, sweep.size() + 1000};
  s.drive = sweep;
  const auto result = fc::run_scenario(s);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.detail.find("does not fit"), std::string::npos)
      << result.error;
}

TEST(BatchRunner, TimeDrivenScenarioRuns) {
  fc::Scenario s;
  s.name = "triangular";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  s.drive = fc::TimeDrive{std::make_shared<fw::Triangular>(10e3, 0.02), 0.0,
                          0.04, 4000};
  const auto result = fc::run_scenario(s);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.curve.size(), 4000u);
  EXPECT_GT(result.metrics.b_peak, 1.0);
}

TEST(BatchRunner, DirectSweepScenarioKeepsStats) {
  fc::Scenario s;
  s.name = "stats";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  s.drive = ts::major_loop(10.0, 2);
  const auto result = fc::run_scenario(s);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.stats.field_events, 0u);
  EXPECT_GT(result.stats.slope_clamps, 0u);
}

TEST(BatchRunner, FrontendsAgreeThroughTheBatchPath) {
  fc::Scenario direct;
  direct.name = "direct";
  direct.ja().params = fm::paper_parameters();
  direct.ja().config = ts::paper_config();
  direct.drive = ts::major_loop(20.0, 1);

  fc::Scenario systemc = direct;
  systemc.name = "systemc";
  systemc.frontend = fc::Frontend::kSystemC;

  const auto results = fc::BatchRunner({.threads = 2}).run({direct, systemc});
  ASSERT_TRUE(results[0].ok() && results[1].ok());
  ASSERT_EQ(results[0].curve.size(), results[1].curve.size());
  for (std::size_t j = 0; j < results[0].curve.size(); ++j) {
    EXPECT_EQ(results[0].curve.points()[j].b, results[1].curve.points()[j].b);
  }
}

TEST(BatchRunner, RunPackedExactMatchesRunBitwise) {
  // A mixed workload: packable kDirect and kSystemC sweeps — time drives
  // are planned onto the frontend's own uniform grid and pack too — plus
  // scenarios the planner must refuse (kSystemC with a clamp the process
  // network hard-codes differently, extension schemes, sub-stepping on a
  // sweep frontend, bad parameters). a packed run (kExact) must reproduce
  // run() bit-for-bit on all of them.
  auto scenarios = material_workload(10);
  scenarios[2].frontend = fc::Frontend::kSystemC;
  scenarios[3].ja().config.scheme = fm::HIntegrator::kHeun;
  scenarios[4].ja().config.substep_max = 50.0;
  scenarios[5].ja().params.c = 1.5;  // invalid -> per-job error via the fallback
  scenarios[6].drive = fc::TimeDrive{std::make_shared<fw::Triangular>(10e3, 0.02),
                                     0.0, 0.04, 2000};
  scenarios[6].metrics_window.reset();
  scenarios[7].frontend = fc::Frontend::kSystemC;
  scenarios[7].ja().config.clamp_negative_slope = false;  // network clamps anyway

  EXPECT_TRUE(fc::BatchRunner::packable(scenarios[0]));
  EXPECT_TRUE(fc::BatchRunner::packable(scenarios[2]));
  EXPECT_FALSE(fc::BatchRunner::packable(scenarios[3]));
  EXPECT_FALSE(fc::BatchRunner::packable(scenarios[4]));
  EXPECT_FALSE(fc::BatchRunner::packable(scenarios[5]));
  EXPECT_TRUE(fc::BatchRunner::packable(scenarios[6]));  // planned sampling
  EXPECT_FALSE(fc::BatchRunner::packable(scenarios[7]));

  for (const unsigned threads : {1u, 3u}) {
    const fc::BatchRunner runner({.threads = threads});
    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});
    expect_identical(plain, packed);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_EQ(plain[i].stats.field_events, packed[i].stats.field_events);
      EXPECT_EQ(plain[i].stats.slope_clamps, packed[i].stats.slope_clamps);
    }
  }
}

TEST(BatchRunner, RunPackedAllFallbackMatchesRunBitwise) {
  // A scenario list with NO packable lanes (kSystemC outside the kernel's
  // clamp subset, kAms with an extension integration scheme the trace
  // planner cannot express): the packed path must take the pure fallback path
  // for everything and still reproduce run() bit-for-bit — previously this
  // shape was only exercised implicitly through mixed workloads.
  auto scenarios = material_workload(6);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i % 2 == 0) {
      scenarios[i].frontend = fc::Frontend::kSystemC;
      // The network hard-codes the direction clamp; a config that says
      // otherwise is not routable (run() ignores the flag either way).
      scenarios[i].ja().config.clamp_direction = false;
    } else {
      const double amp = ts::saturation_amplitude(scenarios[i].ja().params);
      scenarios[i].frontend = fc::Frontend::kAms;
      scenarios[i].ja().config.scheme = fm::HIntegrator::kHeun;
      scenarios[i].drive = fc::TimeDrive{
          std::make_shared<fw::Triangular>(amp, 0.02), 0.0, 0.04, 200};
      scenarios[i].metrics_window.reset();  // kAms places its own steps
    }
  }
  for (const auto& s : scenarios) {
    ASSERT_FALSE(fc::BatchRunner::packable(s)) << s.name;
  }

  for (const unsigned threads : {1u, 3u}) {
    const fc::BatchRunner runner({.threads = threads});
    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});
    expect_identical(plain, packed);
    for (const auto& r : plain) {
      EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
    }
  }
}

void expect_stats_identical(const std::vector<fc::ScenarioResult>& a,
                            const std::vector<fc::ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.samples, b[i].stats.samples) << a[i].name;
    EXPECT_EQ(a[i].stats.field_events, b[i].stats.field_events) << a[i].name;
    EXPECT_EQ(a[i].stats.integration_steps, b[i].stats.integration_steps)
        << a[i].name;
    EXPECT_EQ(a[i].stats.slope_clamps, b[i].stats.slope_clamps) << a[i].name;
    EXPECT_EQ(a[i].stats.direction_clamps, b[i].stats.direction_clamps)
        << a[i].name;
  }
}

TEST(BatchRunner, RunPackedMixedDirectAndSystemCMatchesRunBitwise) {
  // The packed path covers the sweep frontends: alternating kDirect /
  // kSystemC sweeps all qualify for the SoA kernel (paper-subset configs,
  // both clamps on), land interleaved in the same lane blocks, and must
  // reproduce run() bit-for-bit — curves, metrics, and stats (kSystemC
  // results now carry the module's counters through both paths).
  auto scenarios = material_workload(12);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i % 2 == 1) scenarios[i].frontend = fc::Frontend::kSystemC;
  }
  for (const auto& s : scenarios) {
    EXPECT_TRUE(fc::BatchRunner::packable(s)) << s.name;
  }

  for (const unsigned threads : {1u, 3u}) {
    const fc::BatchRunner runner({.threads = threads});
    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});
    expect_identical(plain, packed);
    expect_stats_identical(plain, packed);
    for (std::size_t i = 0; i < plain.size(); ++i) {
      EXPECT_TRUE(plain[i].ok()) << plain[i].error;
      // The satellite contract: non-kDirect frontends report real counters
      // now, not defaulted zeros.
      EXPECT_GT(plain[i].stats.samples, 0u) << plain[i].name;
      EXPECT_GT(plain[i].stats.field_events, 0u) << plain[i].name;
    }
  }
}

TEST(BatchRunner, RunPackedMixedAllThreeFrontendsMatchesRunBitwise) {
  // The acceptance workload: kDirect, kSystemC, and kAms interleaved —
  // sweep drives and time drives — through a packed run (kExact). The kAms
  // lanes take the plan/execute pipeline (shared JA-free trajectory solve,
  // planner-trace replay with sub-steps unrolled) and everything must
  // reproduce run() bit-for-bit: curves, metrics, AND stats.
  auto scenarios = material_workload(15);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    switch (i % 3) {
      case 0: break;  // kDirect sweep
      case 1:
        scenarios[i].frontend = fc::Frontend::kSystemC;
        break;
      case 2: {
        scenarios[i].frontend = fc::Frontend::kAms;
        if (i % 2 == 0) {
          // Time drive: the analogue solver places its own steps.
          const double amp = ts::saturation_amplitude(scenarios[i].ja().params);
          scenarios[i].drive = fc::TimeDrive{
              std::make_shared<fw::Triangular>(amp, 0.02), 0.0, 0.04, 200};
        }
        scenarios[i].metrics_window.reset();  // kAms places its own steps
        break;
      }
    }
    EXPECT_TRUE(fc::BatchRunner::packable(scenarios[i])) << scenarios[i].name;
  }

  for (const unsigned threads : {1u, 2u, 3u, 8u}) {
    const fc::BatchRunner runner({.threads = threads});
    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});
    expect_identical(plain, packed);
    expect_stats_identical(plain, packed);
    for (const auto& r : plain) {
      EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
      EXPECT_GT(r.stats.samples, 0u) << r.name;
    }
  }
}

TEST(BatchRunner, RunPackedAmsSharesTrajectoryAcrossMaterials) {
  // 8 materials x one shared sweep excitation: the packed planner must
  // solve the JA-free H(t) ODE once and fan the materials over it, staying
  // bitwise identical to the serial frontend that re-solves per scenario.
  // (The sharing itself is pinned by test_frontend_plan; here we pin that
  // sharing cannot change the results.)
  const auto& library = fm::material_library();
  const fw::HSweep sweep = ts::major_loop(25.0, 1);
  std::vector<fc::Scenario> scenarios;
  for (std::size_t i = 0; i < 8; ++i) {
    fc::Scenario s;
    s.name = "ams#" + std::to_string(i);
    s.ja().params = library[i % library.size()].params;
    s.ja().config.dhmax = 20.0 + 5.0 * static_cast<double>(i % 3);
    s.frontend = fc::Frontend::kAms;
    s.drive = sweep;
    scenarios.push_back(std::move(s));
  }
  for (const unsigned threads : {1u, 3u}) {
    const fc::BatchRunner runner({.threads = threads});
    const auto plain = runner.run(scenarios);
    const auto packed =
        runner.run(scenarios, {.packing = fc::Packing::kExact});
    expect_identical(plain, packed);
    expect_stats_identical(plain, packed);
    for (const auto& r : plain) {
      EXPECT_TRUE(r.ok()) << r.name << ": " << r.error;
      EXPECT_GT(r.curve.size(), 2u) << r.name;
    }
  }
}

TEST(BatchRunner, RunPackedIsThreadCountInvariant) {
  // Thread count changes the lane-block partition, so this also pins the
  // batch kernel's grouping invariance — in both arithmetic modes (kFast
  // additionally relies on the SIMD-pair/scalar-tail bitwise equality
  // pinned by TimelessJaBatch.FastSimdPairAndScalarTailAgreeBitwise) and
  // across all three frontends, ragged kAms trace lanes included.
  auto scenarios = material_workload(16);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i % 4 == 1) scenarios[i].frontend = fc::Frontend::kSystemC;
    if (i % 4 == 3) {
      scenarios[i].frontend = fc::Frontend::kAms;
      scenarios[i].metrics_window.reset();
    }
  }
  for (const auto math : {fm::BatchMath::kExact, fm::BatchMath::kFast}) {
    const auto serial = fc::BatchRunner({.threads = 1})
                            .run(scenarios, {.packing = fc::packing_for(math)});
    for (const unsigned threads : {2u, 3u, 8u, 0u}) {
      const auto parallel =
          fc::BatchRunner({.threads = threads})
              .run(scenarios, {.packing = fc::packing_for(math)});
      expect_identical(serial, parallel);
    }
  }
}

TEST(BatchRunner, RunPackedFastMathStaysNearExact) {
  const auto scenarios = material_workload(6);
  const auto exact = fc::BatchRunner({.threads = 2})
                         .run(scenarios, {.packing = fc::Packing::kExact});
  const auto fast = fc::BatchRunner({.threads = 2})
                        .run(scenarios, {.packing = fc::Packing::kFast});
  ASSERT_EQ(exact.size(), fast.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    ASSERT_TRUE(fast[i].ok()) << fast[i].error;
    ASSERT_EQ(exact[i].curve.size(), fast[i].curve.size());
    const double b_peak = std::fabs(exact[i].metrics.b_peak);
    for (std::size_t j = 0; j < exact[i].curve.size(); ++j) {
      EXPECT_NEAR(exact[i].curve.points()[j].b, fast[i].curve.points()[j].b,
                  1e-3 * std::max(b_peak, 1.0))
          << exact[i].name << " sample " << j;
    }
    // Figures of merit agree to engineering precision.
    EXPECT_NEAR(exact[i].metrics.coercivity, fast[i].metrics.coercivity,
                1e-3 * std::max(1.0, exact[i].metrics.coercivity));
  }
}

TEST(BatchRunner, PersistentPoolSurvivesManyTinyBatches) {
  // Pool stress: the same runner dispatches many small batches of tiny jobs;
  // the persistent pool is constructed once and every batch stays bitwise
  // equal to the serial reference.
  const fc::BatchRunner serial({.threads = 1});
  const fc::BatchRunner pooled({.threads = 4});

  std::vector<fc::Scenario> tiny = material_workload(8);
  for (auto& s : tiny) {
    // Shrink each job to a handful of samples so dispatch overhead dominates.
    const double amp = ts::saturation_amplitude(s.ja().params);
    s.drive = fw::SweepBuilder(amp / 8.0).cycles(amp, 1).build();
    s.metrics_window.reset();
  }
  const auto reference = serial.run(tiny);
  for (int round = 0; round < 25; ++round) {
    expect_identical(reference, pooled.run(tiny));
    expect_identical(reference,
                     pooled.run(tiny, {.packing = fc::Packing::kExact}));
  }
}

TEST(BatchRunner, ResolvedThreadsNeverExceedsJobs) {
  const fc::BatchRunner runner({.threads = 8});
  EXPECT_EQ(runner.resolved_threads(3), 3u);
  EXPECT_EQ(runner.resolved_threads(100), 8u);
  EXPECT_EQ(runner.resolved_threads(0), 1u);
  const fc::BatchRunner defaults;
  EXPECT_GE(defaults.resolved_threads(100), 1u);
}

// ---------------------------------------------------------------------------
// Fault tolerance: cancellation, deadlines, error budgets, quarantine, and
// the flux-driven (inverse-solve) scenario path.
// ---------------------------------------------------------------------------

namespace {

/// A waveform that emits NaN: the one way a *valid-looking* scenario can
/// poison a packed lane (validate() rejects non-finite sweep samples, but a
/// time drive is sampled after validation, at planning time).
class NanWaveform final : public fw::Waveform {
 public:
  [[nodiscard]] double value(double) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }
};

/// The unclamped negative-slope regime from test_inverse_ja: alpha*ms > k
/// makes the near-saturation downward solve unbracketable.
fc::Scenario bracket_failure_scenario() {
  fc::Scenario s;
  s.name = "unbracketable";
  s.ja().params = fm::paper_parameters();
  s.ja().params.k = 2000.0;  // coupling_field() = alpha*ms = 4800 > k
  s.ja().config.dhmax = 10.0;
  s.ja().config.substep_max = 25.0;
  s.ja().config.clamp_negative_slope = false;
  s.ja().config.clamp_direction = false;
  fc::FluxDrive drive;
  for (double b = 0.1; b <= 1.3 + 1e-12; b += 0.1) drive.b.push_back(b);
  drive.b.push_back(1.35);
  drive.b.push_back(0.0);  // recedes from every probe: bracket failure
  s.drive = std::move(drive);
  return s;
}

}  // namespace

TEST(BatchRunner, RunWithEmptyLimitsMatchesPlainRun) {
  const auto scenarios = material_workload(6);
  const fc::BatchRunner runner({.threads = 2});
  fc::BatchReport report;
  const auto limited =
      runner.run(scenarios, fc::RunOptions{}, &report);
  expect_identical(runner.run(scenarios), limited);
  EXPECT_TRUE(report.completed());
  EXPECT_EQ(report.jobs, scenarios.size());
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.cancelled, 0u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(BatchRunner, PreCancelledTokenCancelsEveryScenario) {
  const auto scenarios = material_workload(5);
  fc::RunLimits limits;
  limits.cancel.cancel();
  fc::BatchReport report;
  const auto results = fc::BatchRunner({.threads = 2})
                           .run(scenarios, {.limits = limits}, &report);
  ASSERT_EQ(results.size(), scenarios.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].error.code, fc::ErrorCode::kCancelled) << i;
    EXPECT_EQ(results[i].name, scenarios[i].name);  // identity survives
    EXPECT_TRUE(results[i].curve.empty());
  }
  EXPECT_FALSE(report.completed());
  EXPECT_EQ(report.stop.code, fc::ErrorCode::kCancelled);
  EXPECT_EQ(report.cancelled, scenarios.size());
  EXPECT_EQ(report.failed, 0u);
}

TEST(BatchRunner, CancellationMidBatchDeliversPartialResults) {
  // The acceptance scenario: cancel from outside while workers are mid
  // batch. Which scenarios finished is scheduling-dependent; what is NOT
  // negotiable is that every index reports (ok or kCancelled, nothing
  // else), the counters reconcile, and the call returns (no deadlock).
  const auto scenarios = material_workload(64);
  fc::RunLimits limits;
  fc::BatchReport report;
  const fc::BatchRunner runner({.threads = 4});
  std::thread canceller([&limits] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    limits.cancel.cancel();
  });
  const auto results = runner.run(scenarios, {.limits = limits}, &report);
  canceller.join();

  ASSERT_EQ(results.size(), scenarios.size());
  std::size_t ok = 0, cancelled = 0;
  for (const auto& r : results) {
    if (r.ok()) {
      ++ok;
      EXPECT_GT(r.curve.size(), 0u);  // partial results are COMPLETE results
    } else {
      ASSERT_EQ(r.error.code, fc::ErrorCode::kCancelled) << r.name;
      ++cancelled;
    }
  }
  EXPECT_EQ(ok + cancelled, scenarios.size());
  EXPECT_EQ(report.cancelled, cancelled);
  EXPECT_EQ(report.failed, 0u);
  if (cancelled > 0) {
    EXPECT_EQ(report.stop.code, fc::ErrorCode::kCancelled);
  }
}

TEST(BatchRunner, ExpiredDeadlineStampsDeadlineExceeded) {
  const auto scenarios = material_workload(4);
  fc::RunLimits limits;
  limits.deadline_s = 1e-9;  // expired by the first poll
  fc::BatchReport report;
  const auto results = fc::BatchRunner({.threads = 1})
                           .run(scenarios, {.limits = limits}, &report);
  for (const auto& r : results) {
    EXPECT_EQ(r.error.code, fc::ErrorCode::kDeadlineExceeded) << r.name;
  }
  EXPECT_EQ(report.stop.code, fc::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(report.cancelled, scenarios.size());
}

TEST(BatchRunner, ErrorBudgetStopsTheBatch) {
  // Serial order makes the budget trip deterministic: scenario 0 fails,
  // tripping max_errors=1, so every later scenario is cancelled rather
  // than computed.
  auto scenarios = material_workload(4);
  scenarios[0].ja().params.c = 1.5;  // invalid
  fc::RunLimits limits;
  limits.max_errors = 1;
  fc::BatchReport report;
  const auto results = fc::BatchRunner({.threads = 1})
                           .run(scenarios, {.limits = limits}, &report);
  EXPECT_EQ(results[0].error.code, fc::ErrorCode::kInvalidScenario);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].error.code, fc::ErrorCode::kCancelled) << i;
    EXPECT_NE(results[i].error.detail.find("error budget"), std::string::npos)
        << results[i].error;
  }
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.cancelled, results.size() - 1);
  EXPECT_EQ(report.stop.code, fc::ErrorCode::kCancelled);
}

TEST(BatchRunner, RunPackedHonoursLimits) {
  const auto scenarios = material_workload(6);
  fc::RunLimits limits;
  limits.cancel.cancel();
  fc::BatchReport report;
  const auto results =
      fc::BatchRunner({.threads = 2})
          .run(scenarios, {.packing = fc::Packing::kExact, .limits = limits},
               &report);
  ASSERT_EQ(results.size(), scenarios.size());
  for (const auto& r : results) {
    EXPECT_EQ(r.error.code, fc::ErrorCode::kCancelled) << r.name;
  }
  EXPECT_EQ(report.cancelled, scenarios.size());
}

TEST(BatchRunner, PackedNanScenarioQuarantinesWithoutPoisoningNeighbours) {
  // THE acceptance property: one scenario that goes non-finite inside the
  // packed kernel must surface as a structured per-job error while every
  // healthy lane stays bitwise identical to the baseline — grouping
  // invariance means a NaN lane cannot leak into its SIMD neighbours.
  auto scenarios = material_workload(8);
  const std::size_t nan_at = 3;
  scenarios[nan_at].name = "nan-lane";
  scenarios[nan_at].drive =
      fc::TimeDrive{std::make_shared<NanWaveform>(), 0.0, 0.04, 500};
  scenarios[nan_at].metrics_window.reset();

  for (const auto math : {fm::BatchMath::kExact, fm::BatchMath::kFast}) {
    fc::BatchReport report;
    const fc::BatchRunner runner({.threads = 2});
    const auto packed = runner.run(
        scenarios, {.packing = fc::packing_for(math)}, &report);
    ASSERT_EQ(packed.size(), scenarios.size());

    // The poisoned lane: quarantined, retried through the scalar exact
    // path, and diagnosed there — the same verdict run() reaches.
    EXPECT_EQ(packed[nan_at].error.code, fc::ErrorCode::kNonFinite)
        << packed[nan_at].error;
    EXPECT_GE(report.quarantined, 1u);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_TRUE(report.completed());  // a lane failure does not stop a batch
    const auto solo = fc::run_scenario(scenarios[nan_at]);
    EXPECT_EQ(solo.error.code, fc::ErrorCode::kNonFinite);

    // Healthy lanes: bitwise equal to the same-math baseline (run() for
    // kExact; for kFast, the packed run of the healthy subset — lane
    // grouping invariance makes the partition irrelevant).
    auto healthy = scenarios;
    healthy.erase(healthy.begin() + static_cast<std::ptrdiff_t>(nan_at));
    const auto baseline = math == fm::BatchMath::kExact
                              ? runner.run(healthy)
                              : runner.run(healthy,
                                                 {.packing = fc::packing_for(math)});
    for (std::size_t i = 0, j = 0; i < packed.size(); ++i) {
      if (i == nan_at) continue;
      ASSERT_TRUE(packed[i].ok()) << packed[i].name << ": " << packed[i].error;
      ASSERT_EQ(packed[i].curve.size(), baseline[j].curve.size());
      for (std::size_t p = 0; p < packed[i].curve.size(); ++p) {
        ASSERT_EQ(packed[i].curve.points()[p].b, baseline[j].curve.points()[p].b)
            << packed[i].name << " point " << p;
      }
      ++j;
    }
  }
}

TEST(BatchRunner, FluxDriveScenarioRunsThroughInverseSolver) {
  fc::Scenario s;
  s.name = "flux-driven";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  fc::FluxDrive drive;
  for (double b = 0.1; b <= 1.2 + 1e-12; b += 0.1) drive.b.push_back(b);
  s.drive = std::move(drive);
  const auto result = fc::run_scenario(s);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.curve.size(), 12u);
  for (std::size_t j = 0; j < result.curve.size(); ++j) {
    // The inverse solve realises each commanded flux to tolerance.
    EXPECT_NEAR(result.curve.points()[j].b, 0.1 * static_cast<double>(j + 1),
                1e-6)
        << "sample " << j;
  }
}

TEST(BatchRunner, FluxDriveBracketFailureSurfacesAsStructuredError) {
  // Satellite: InverseTimelessJa::bracket_failures() wired into the
  // taxonomy — the unbracketable solve reports kBracketFailure (not a
  // generic solver error) and keeps the partial curve up to the failure.
  const fc::Scenario s = bracket_failure_scenario();
  const auto result = fc::run_scenario(s);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, fc::ErrorCode::kBracketFailure);
  EXPECT_NE(result.error.detail.find("bracket"), std::string::npos)
      << result.error;
  // 14 targets converged before the downward one failed.
  EXPECT_EQ(result.curve.size(), 14u);

  // Through the batch (a packed run routes FluxDrive to the fallback path).
  fc::BatchReport report;
  const auto batch =
      fc::BatchRunner({.threads = 2})
          .run({s}, {.packing = fc::Packing::kExact}, &report);
  EXPECT_EQ(batch[0].error.code, fc::ErrorCode::kBracketFailure);
  EXPECT_EQ(report.failed, 1u);
}

TEST(BatchRunner, ValidateRejectsMalformedScenarios) {
  fc::Scenario good = material_workload(1)[0];
  EXPECT_TRUE(fc::validate(good).ok());

  fc::Scenario bad_params = good;
  bad_params.ja().params.c = 1.5;
  EXPECT_EQ(fc::validate(bad_params).code, fc::ErrorCode::kInvalidScenario);

  fc::Scenario bad_config = good;
  bad_config.ja().config.dhmax = 0.0;
  EXPECT_EQ(fc::validate(bad_config).code, fc::ErrorCode::kInvalidScenario);

  fc::Scenario bad_sweep = good;
  fw::HSweep sweep;
  sweep.h.push_back(std::numeric_limits<double>::infinity());
  bad_sweep.drive = std::move(sweep);
  EXPECT_EQ(fc::validate(bad_sweep).code, fc::ErrorCode::kInvalidScenario);

  fc::Scenario bad_time = good;
  bad_time.drive = fc::TimeDrive{};  // null waveform
  EXPECT_EQ(fc::validate(bad_time).code, fc::ErrorCode::kInvalidScenario);

  fc::Scenario bad_flux = good;
  bad_flux.frontend = fc::Frontend::kAms;  // FluxDrive is kDirect-only
  bad_flux.drive = fc::FluxDrive{{0.1, 0.2}};
  EXPECT_EQ(fc::validate(bad_flux).code, fc::ErrorCode::kInvalidScenario);
}
