// Tests for the `'INTEG`-style time-domain baseline: correctness of the
// trajectory and — crucially — the solver-stress observables of CLM2.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "core/dc_sweep.hpp"
#include "mag/time_domain_ja.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;

namespace {

fm::TimeDomainConfig config_for(double t_end, double rel_tol = 1e-4) {
  fm::TimeDomainConfig cfg;
  cfg.t_start = 0.0;
  cfg.t_end = t_end;
  cfg.solver.dt_initial = t_end * 1e-5;
  cfg.solver.rel_tol = rel_tol;
  cfg.solver.abs_tol = 1e-9;
  return cfg;
}

}  // namespace

TEST(TimeDomainJa, SystemBasics) {
  const fw::Triangular tri(10e3, 0.02);
  fm::TimeDomainJaSystem system(fm::paper_parameters(), tri, true);
  EXPECT_EQ(system.size(), 1u);
  double y0 = 1.0;
  system.initial(std::span<double>(&y0, 1));
  EXPECT_DOUBLE_EQ(y0, 0.0);
  EXPECT_DOUBLE_EQ(system.total_m(0.0, 0.0), 0.0);
  // total_m solves the fixed point: m - c/(1+c)*man - m_irr = 0.
  const double m = system.total_m(5000.0, 0.5);
  EXPECT_GT(m, 0.5);
  EXPECT_LT(m, 1.0);
}

TEST(TimeDomainJa, DerivativeSignFollowsField) {
  const fw::Triangular tri(10e3, 0.02);
  fm::TimeDomainJaSystem system(fm::paper_parameters(), tri, true);
  double y = 0.0;
  double dydt = 0.0;
  // Rising quarter of the triangle: positive dH/dt -> positive dM/dt.
  system.derivative(0.001, std::span<const double>(&y, 1),
                    std::span<double>(&dydt, 1));
  EXPECT_GT(dydt, 0.0);
}

TEST(TimeDomainJa, ProducesClosedMajorLoop) {
  const fw::Triangular tri(10e3, 0.02);
  const auto result =
      run_time_domain_ja(fm::paper_parameters(), tri, config_for(0.06));
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.curve.size(), 100u);

  const fa::LoopMetrics metrics = fa::analyze_loop(result.curve);
  EXPECT_GT(metrics.b_peak, 1.0);
  EXPECT_GT(metrics.remanence, 0.3);
  EXPECT_GT(metrics.coercivity, 500.0);
}

TEST(TimeDomainJa, TurningPointsStressTheSolver) {
  // CLM2 mechanism: the triangular excitation's slope flips discontinuously
  // at each turning point; the adaptive solver reacts with rejections.
  const fw::Triangular tri(10e3, 0.02);
  const auto result =
      run_time_domain_ja(fm::paper_parameters(), tri, config_for(0.06, 1e-5));
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.stats.steps_rejected_lte + result.stats.steps_rejected_newton,
            0u);
}

TEST(TimeDomainJa, MatchesTimelessTrajectory) {
  // Same equations, different integration route: trajectories agree to a
  // few percent of peak B when both are run fine-grained.
  const double amplitude = 10e3;
  const fw::Triangular tri(amplitude, 0.02);
  auto cfg = config_for(0.02, 1e-6);
  const auto td = run_time_domain_ja(fm::paper_parameters(), tri, cfg);
  ASSERT_TRUE(td.completed);

  fm::TimelessConfig tcfg;
  tcfg.dhmax = 5.0;
  const fw::HSweep sweep = fw::sweep_from_waveform(tri, 0.0, 0.02, 8001);
  const auto direct = fc::run_dc_sweep(fm::paper_parameters(), tcfg, sweep);

  const fa::CurveDelta delta = fa::compare_by_arc(td.curve, direct.curve);
  EXPECT_LT(delta.rms_b, 0.08);  // a few percent of ~1.7 T peak
}

TEST(TimeDomainJa, UnclampedRunsWithoutCrashing) {
  const fw::Triangular tri(10e3, 0.02);
  auto cfg = config_for(0.02);
  cfg.clamp_negative_slope = false;
  const auto result = run_time_domain_ja(fm::paper_parameters(), tri, cfg);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.curve.size(), 10u);
}

TEST(TimeDomainJa, SineExcitationWorks) {
  const fw::Sine sine(8e3, 50.0);
  const auto result =
      run_time_domain_ja(fm::paper_parameters(), sine, config_for(0.04));
  ASSERT_TRUE(result.completed);
  const fa::LoopMetrics metrics = fa::analyze_loop(result.curve);
  EXPECT_GT(metrics.b_peak, 0.8);
  EXPECT_EQ(result.stats.hard_failures, 0u);
}
