// Tests for the flux-driven (inverse) timeless model.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/inverse_ja.hpp"
#include "mag/timeless_ja.hpp"
#include "util/constants.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;

namespace {

fm::InverseConfig test_config() {
  fm::InverseConfig cfg;
  cfg.forward.dhmax = 10.0;
  return cfg;
}

}  // namespace

TEST(InverseJa, HitsRequestedFluxDensity) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  for (const double b : {0.2, 0.8, 1.4, 0.9, -0.5, -1.4, 0.0}) {
    inv.apply_b(b);
    EXPECT_NEAR(inv.flux_density(), b, 1e-6) << "target " << b;
  }
}

TEST(InverseJa, RoundTripsAgainstForwardModel) {
  // Forward-run a loop, then re-drive the inverse model with the forward
  // B samples: the recovered fields must retrace the excitation.
  fm::TimelessConfig fwd_cfg;
  fwd_cfg.dhmax = 10.0;
  fm::TimelessJa forward(fm::paper_parameters(), fwd_cfg);

  fm::InverseTimelessJa inverse(fm::paper_parameters(), test_config());

  const fw::HSweep sweep = fw::SweepBuilder(25.0).cycles(8e3, 1).build();
  double worst_h = 0.0;
  for (const double h : sweep.h) {
    forward.apply(h);
    const double h_rec = inverse.apply_b(forward.flux_density());
    worst_h = std::max(worst_h, std::fabs(h_rec - h));
  }
  // Field recovery within a few event thresholds (the two models quantise
  // the trajectory independently).
  EXPECT_LT(worst_h, 4.0 * fwd_cfg.dhmax);
}

TEST(InverseJa, ZeroTargetFromVirginState) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  const double h = inv.apply_b(0.0);
  EXPECT_NEAR(h, 0.0, 1e-9);
  EXPECT_EQ(inv.solve_iterations(), 0u);  // short-circuit on zero residual
}

TEST(InverseJa, HysteresisVisibleThroughInverse) {
  // Reaching +1 T, then asking for 0 T must require a *negative* field
  // (remanence): the inverse model sees the hysteresis.
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  inv.apply_b(1.5);
  const double h_back = inv.apply_b(0.0);
  EXPECT_LT(h_back, -100.0);
}

TEST(InverseJa, SaturationRequiresLargeFields) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  const double h_knee = inv.apply_b(1.5);
  inv.reset();
  const double h_deep = inv.apply_b(2.1);  // past mu0*Ms ~ 2.01 T
  EXPECT_GT(h_deep, 3.0 * h_knee);
}

TEST(InverseJa, ResetRestoresVirginState) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  inv.apply_b(1.0);
  inv.reset();
  EXPECT_DOUBLE_EQ(inv.magnetisation(), 0.0);
  EXPECT_DOUBLE_EQ(inv.field(), 0.0);
  EXPECT_EQ(inv.solve_iterations(), 0u);
}

TEST(InverseJa, IterationCountStaysModest) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  int samples = 0;
  for (double b = 0.0; b <= 1.6; b += 0.05) {
    inv.apply_b(b);
    ++samples;
  }
  for (double b = 1.6; b >= -1.6; b -= 0.05) {
    inv.apply_b(b);
    ++samples;
  }
  const double per_sample =
      static_cast<double>(inv.solve_iterations()) / samples;
  EXPECT_LT(per_sample, 40.0);
}

TEST(InverseJa, WorksAcrossMaterials) {
  for (const auto& material : fm::material_library()) {
    fm::InverseConfig cfg;
    cfg.forward.dhmax = (material.params.a + material.params.k) / 600.0;
    fm::InverseTimelessJa inv(material.params, cfg);
    const double b_target = 0.5 * ferro::util::kMu0 * material.params.ms;
    inv.apply_b(b_target);
    EXPECT_NEAR(inv.flux_density(), b_target, 1e-6) << material.name;
    inv.apply_b(-b_target);
    EXPECT_NEAR(inv.flux_density(), -b_target, 1e-6) << material.name;
  }
}
