// Tests for the flux-driven (inverse) timeless model.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/inverse_ja.hpp"
#include "mag/timeless_ja.hpp"
#include "util/constants.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;

namespace {

fm::InverseConfig test_config() {
  fm::InverseConfig cfg;
  cfg.forward.dhmax = 10.0;
  return cfg;
}

}  // namespace

TEST(InverseJa, HitsRequestedFluxDensity) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  for (const double b : {0.2, 0.8, 1.4, 0.9, -0.5, -1.4, 0.0}) {
    inv.apply_b(b);
    EXPECT_NEAR(inv.flux_density(), b, 1e-6) << "target " << b;
  }
}

TEST(InverseJa, RoundTripsAgainstForwardModel) {
  // Forward-run a loop, then re-drive the inverse model with the forward
  // B samples: the recovered fields must retrace the excitation.
  fm::TimelessConfig fwd_cfg;
  fwd_cfg.dhmax = 10.0;
  fm::TimelessJa forward(fm::paper_parameters(), fwd_cfg);

  fm::InverseTimelessJa inverse(fm::paper_parameters(), test_config());

  const fw::HSweep sweep = fw::SweepBuilder(25.0).cycles(8e3, 1).build();
  double worst_h = 0.0;
  for (const double h : sweep.h) {
    forward.apply(h);
    const double h_rec = inverse.apply_b(forward.flux_density());
    worst_h = std::max(worst_h, std::fabs(h_rec - h));
  }
  // Field recovery within a few event thresholds (the two models quantise
  // the trajectory independently).
  EXPECT_LT(worst_h, 4.0 * fwd_cfg.dhmax);
}

TEST(InverseJa, ZeroTargetFromVirginState) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  const double h = inv.apply_b(0.0);
  EXPECT_NEAR(h, 0.0, 1e-9);
  EXPECT_EQ(inv.solve_iterations(), 0u);  // short-circuit on zero residual
}

TEST(InverseJa, HysteresisVisibleThroughInverse) {
  // Reaching +1 T, then asking for 0 T must require a *negative* field
  // (remanence): the inverse model sees the hysteresis.
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  inv.apply_b(1.5);
  const double h_back = inv.apply_b(0.0);
  EXPECT_LT(h_back, -100.0);
}

TEST(InverseJa, SaturationRequiresLargeFields) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  const double h_knee = inv.apply_b(1.5);
  inv.reset();
  const double h_deep = inv.apply_b(2.1);  // past mu0*Ms ~ 2.01 T
  EXPECT_GT(h_deep, 3.0 * h_knee);
}

TEST(InverseJa, ResetRestoresVirginState) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  inv.apply_b(1.0);
  inv.reset();
  EXPECT_DOUBLE_EQ(inv.magnetisation(), 0.0);
  EXPECT_DOUBLE_EQ(inv.field(), 0.0);
  EXPECT_EQ(inv.solve_iterations(), 0u);
}

TEST(InverseJa, IterationCountStaysModest) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  int samples = 0;
  for (double b = 0.0; b <= 1.6; b += 0.05) {
    inv.apply_b(b);
    ++samples;
  }
  for (double b = 1.6; b >= -1.6; b -= 0.05) {
    inv.apply_b(b);
    ++samples;
  }
  const double per_sample =
      static_cast<double>(inv.solve_iterations()) / samples;
  EXPECT_LT(per_sample, 40.0);
}

TEST(InverseJa, ConvergedFlagTracksEverySolve) {
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  EXPECT_TRUE(inv.converged());  // vacuously true before the first solve
  for (const double b : {0.5, 1.4, -1.0, 0.0}) {
    inv.apply_b(b);
    EXPECT_TRUE(inv.converged()) << "target " << b;
  }
  EXPECT_EQ(inv.bracket_failures(), 0u);
}

TEST(InverseJa, SurfacesBracketFailureNearSaturationInUnclampedRegime) {
  // Regression: the raw (unclamped) model with alpha*ms > k is the
  // negative-slope regime, where a downward trial from near saturation
  // *raises* the trial magnetisation faster than H falls — B recedes from
  // the target as the probe advances, so no finite expansion brackets it.
  // The old fixed-stride expansion (8 rounds of the same mu0 stride) fell
  // off the end of its loop and silently committed a field whose flux was
  // off by thousands of tesla. The solve must now surface the failure and
  // leave the committed state untouched.
  fm::JaParameters p = fm::paper_parameters();
  p.k = 2000.0;  // coupling_field() = alpha*ms = 4800 > k
  fm::InverseConfig cfg;
  cfg.forward.dhmax = 10.0;
  cfg.forward.substep_max = 25.0;  // trial resolution: coarser than dhmax
  cfg.forward.clamp_negative_slope = false;
  cfg.forward.clamp_direction = false;
  fm::InverseTimelessJa inv(p, cfg);

  // Drive near saturation through the solver's own commit path; the upward
  // branch is well-posed even without the clamps.
  for (double b = 0.1; b <= 1.3 + 1e-12; b += 0.1) {
    inv.apply_b(b);
    ASSERT_TRUE(inv.converged()) << "pre-drive target " << b;
  }
  inv.apply_b(1.35);
  ASSERT_TRUE(inv.converged());
  const double h_before = inv.field();
  const double b_before = inv.flux_density();

  // The near-saturation downward target that previously failed to bracket.
  const double h = inv.apply_b(0.0);
  EXPECT_FALSE(inv.converged());
  EXPECT_EQ(inv.bracket_failures(), 1u);
  EXPECT_DOUBLE_EQ(h, h_before);  // no commit happened
  EXPECT_DOUBLE_EQ(inv.field(), h_before);
  EXPECT_DOUBLE_EQ(inv.flux_density(), b_before);

  // From the intact state the solver still serves well-posed targets.
  inv.apply_b(1.4);
  EXPECT_TRUE(inv.converged());
  EXPECT_NEAR(inv.flux_density(), 1.4, 1e-6);
}

TEST(InverseJa, BracketFailureLeavesModelAtPresentField) {
  // Force an unbracketable solve: a NaN target can never satisfy the
  // bracket predicate, so apply_b must report failure and keep the model's
  // committed state instead of driving it somewhere arbitrary.
  fm::InverseTimelessJa inv(fm::paper_parameters(), test_config());
  inv.apply_b(1.0);
  const double h_before = inv.field();
  const double b_before = inv.flux_density();

  const double h = inv.apply_b(std::nan(""));
  EXPECT_FALSE(inv.converged());
  EXPECT_EQ(inv.bracket_failures(), 1u);
  EXPECT_DOUBLE_EQ(h, h_before);
  EXPECT_DOUBLE_EQ(inv.field(), h_before);
  EXPECT_DOUBLE_EQ(inv.flux_density(), b_before);

  // The solver recovers on the next well-posed target.
  inv.apply_b(0.5);
  EXPECT_TRUE(inv.converged());
  EXPECT_NEAR(inv.flux_density(), 0.5, 1e-6);
}

TEST(InverseJa, WorksAcrossMaterials) {
  for (const auto& material : fm::material_library()) {
    fm::InverseConfig cfg;
    cfg.forward.dhmax = (material.params.a + material.params.k) / 600.0;
    fm::InverseTimelessJa inv(material.params, cfg);
    const double b_target = 0.5 * ferro::util::kMu0 * material.params.ms;
    inv.apply_b(b_target);
    EXPECT_NEAR(inv.flux_density(), b_target, 1e-6) << material.name;
    inv.apply_b(-b_target);
    EXPECT_NEAR(inv.flux_density(), -b_target, 1e-6) << material.name;
  }
}
