// Unit tests for the analogue-solver substrate: dense LU, damped Newton,
// integrator utilities, and the adaptive transient engine on ODEs with
// known closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ams/integrator.hpp"
#include "ams/matrix.hpp"
#include "ams/newton.hpp"
#include "ams/transient.hpp"

namespace fa = ferro::ams;

TEST(Matrix, FillAtMultiply) {
  fa::Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(0, 0) = 1.0;
  m.at(0, 2) = 2.0;
  m.at(1, 1) = -1.0;
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  m.fill(0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
}

TEST(Lu, SolvesKnownSystem) {
  fa::Matrix a(3, 3);
  const double vals[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = vals[r][c];
  const std::vector<double> b = {8.0, -11.0, -3.0};
  std::vector<double> x(3);

  fa::LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  ASSERT_TRUE(lu.solve(b, x));
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the initial diagonal: only solvable with row exchange.
  fa::Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const std::vector<double> b = {3.0, 5.0};
  std::vector<double> x(2);
  fa::LuSolver lu;
  ASSERT_TRUE(lu.factor(a));
  ASSERT_TRUE(lu.solve(b, x));
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
}

TEST(Lu, DetectsSingular) {
  fa::Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  fa::LuSolver lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_TRUE(lu.singular());
  std::vector<double> x(2);
  EXPECT_FALSE(lu.solve(std::vector<double>{1.0, 2.0}, x));
}

TEST(Newton, ScalarQuadratic) {
  // x^2 = 4, start from 3.
  fa::NewtonSolver solver;
  std::vector<double> x = {3.0};
  const auto result = solver.solve(
      1, [](std::span<const double> v, std::span<double> f) {
        f[0] = v[0] * v[0] - 4.0;
      },
      x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 2.0, 1e-8);
}

TEST(Newton, CoupledSystem) {
  // x^2 + y^2 = 25, x - y = 1  ->  (4, 3).
  fa::NewtonSolver solver;
  std::vector<double> x = {5.0, 1.0};
  const auto result = solver.solve(
      2, [](std::span<const double> v, std::span<double> f) {
        f[0] = v[0] * v[0] + v[1] * v[1] - 25.0;
        f[1] = v[0] - v[1] - 1.0;
      },
      x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 4.0, 1e-7);
  EXPECT_NEAR(x[1], 3.0, 1e-7);
}

TEST(Newton, AnalyticJacobianPath) {
  fa::NewtonSolver solver;
  std::vector<double> x = {10.0};
  const auto result = solver.solve(
      1,
      [](std::span<const double> v, std::span<double> f) {
        f[0] = std::exp(v[0]) - 2.0;
      },
      x,
      [](std::span<const double> v, fa::Matrix& j) {
        j.at(0, 0) = std::exp(v[0]);
      });
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], std::log(2.0), 1e-8);
}

TEST(Newton, DampingRescuesOvershoot) {
  // atan has a tiny capture basin for raw Newton from x0 = 3; damping must
  // still find the root at 0.
  fa::NewtonSolver solver;
  std::vector<double> x = {3.0};
  const auto result = solver.solve(
      1, [](std::span<const double> v, std::span<double> f) {
        f[0] = std::atan(v[0]);
      },
      x);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 0.0, 1e-8);
}

TEST(Newton, ReportsNonConvergence) {
  fa::NewtonOptions options;
  options.max_iterations = 4;
  fa::NewtonSolver solver(options);
  std::vector<double> x = {1.0};
  const auto result = solver.solve(
      1, [](std::span<const double> v, std::span<double> f) {
        f[0] = v[0] * v[0] + 1.0;  // no real root
      },
      x);
  EXPECT_FALSE(result.converged);
}

TEST(InfNorm, Basics) {
  EXPECT_DOUBLE_EQ(fa::inf_norm(std::vector<double>{-3.0, 2.0}), 3.0);
  EXPECT_DOUBLE_EQ(fa::inf_norm(std::vector<double>{}), 0.0);
}

namespace {

/// y' = -k y, y(0) = 1: y(t) = exp(-k t).
class Decay final : public fa::OdeSystem {
 public:
  explicit Decay(double k) : k_(k) {}
  [[nodiscard]] std::size_t size() const override { return 1; }
  void initial(std::span<double> y0) const override { y0[0] = 1.0; }
  void derivative(double, std::span<const double> y,
                  std::span<double> dydt) const override {
    dydt[0] = -k_ * y[0];
  }

 private:
  double k_;
};

/// Harmonic oscillator: y'' = -w^2 y as a 2-state system; energy conserved.
class Oscillator final : public fa::OdeSystem {
 public:
  explicit Oscillator(double w) : w_(w) {}
  [[nodiscard]] std::size_t size() const override { return 2; }
  void initial(std::span<double> y0) const override {
    y0[0] = 1.0;
    y0[1] = 0.0;
  }
  void derivative(double, std::span<const double> y,
                  std::span<double> dydt) const override {
    dydt[0] = y[1];
    dydt[1] = -w_ * w_ * y[0];
  }

 private:
  double w_;
};

}  // namespace

TEST(Rk4, DecayMatchesClosedForm) {
  const Decay sys(2.0);
  std::vector<double> y = {1.0};
  fa::rk4_integrate(sys, 0.0, 1.0, 100, y);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-8);
}

TEST(Rk4, FourthOrderConvergence) {
  const Decay sys(1.0);
  const auto error_with = [&](std::size_t steps) {
    std::vector<double> y = {1.0};
    fa::rk4_integrate(sys, 0.0, 1.0, steps, y);
    return std::fabs(y[0] - std::exp(-1.0));
  };
  const double e1 = error_with(10);
  const double e2 = error_with(20);
  const double order = std::log2(e1 / e2);
  EXPECT_GT(order, 3.7);
  EXPECT_LT(order, 4.3);
}

TEST(Rk4, CallbackFiresEachStep) {
  const Decay sys(1.0);
  std::vector<double> y = {1.0};
  int calls = 0;
  fa::rk4_integrate(sys, 0.0, 1.0, 7, y,
                    [&](double, std::span<const double>) { ++calls; });
  EXPECT_EQ(calls, 7);
}

TEST(IntegrationMethod, Names) {
  EXPECT_EQ(fa::to_string(fa::IntegrationMethod::kBackwardEuler),
            "backward-euler");
  EXPECT_EQ(fa::to_string(fa::IntegrationMethod::kTrapezoidal), "trapezoidal");
  EXPECT_EQ(fa::to_string(fa::IntegrationMethod::kGear2), "gear2");
  EXPECT_EQ(fa::method_order(fa::IntegrationMethod::kBackwardEuler), 1);
  EXPECT_EQ(fa::method_order(fa::IntegrationMethod::kGear2), 2);
}

class TransientMethods : public ::testing::TestWithParam<fa::IntegrationMethod> {};

TEST_P(TransientMethods, DecayAccuracy) {
  Decay sys(3.0);
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-4;
  options.rel_tol = 1e-6;
  options.abs_tol = 1e-10;
  options.method = GetParam();

  fa::TransientSolver solver(options);
  double final_y = 0.0;
  ASSERT_TRUE(solver.run(sys, [&](double, std::span<const double> y) {
    final_y = y[0];
  }));
  EXPECT_NEAR(final_y, std::exp(-3.0), 5e-4);
  EXPECT_GT(solver.stats().steps_accepted, 10u);
  EXPECT_EQ(solver.stats().hard_failures, 0u);
}

TEST_P(TransientMethods, OscillatorStaysBounded) {
  Oscillator sys(2.0 * 3.14159265358979);
  fa::TransientOptions options;
  options.t_end = 3.0;
  options.dt_initial = 1e-4;
  options.rel_tol = 1e-5;
  options.abs_tol = 1e-9;
  options.method = GetParam();

  fa::TransientSolver solver(options);
  double max_amp = 0.0;
  ASSERT_TRUE(solver.run(sys, [&](double, std::span<const double> y) {
    max_amp = std::max(max_amp, std::fabs(y[0]));
  }));
  EXPECT_LT(max_amp, 1.2);  // no blow-up over 3 periods
}

INSTANTIATE_TEST_SUITE_P(AllMethods, TransientMethods,
                         ::testing::Values(fa::IntegrationMethod::kBackwardEuler,
                                           fa::IntegrationMethod::kTrapezoidal,
                                           fa::IntegrationMethod::kGear2),
                         [](const auto& info) {
                           std::string name(fa::to_string(info.param));
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(Transient, HonoursBreakpoints) {
  Decay sys(1.0);
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 0.5;  // huge steps so breakpoints matter
  options.rel_tol = 1e-2;
  options.breakpoints = {0.3, 0.7};

  fa::TransientSolver solver(options);
  std::vector<double> times;
  ASSERT_TRUE(solver.run(
      sys, [&](double t, std::span<const double>) { times.push_back(t); }));

  const auto hit = [&](double t_target) {
    for (const double t : times) {
      if (std::fabs(t - t_target) < 1e-9) return true;
    }
    return false;
  };
  EXPECT_TRUE(hit(0.3));
  EXPECT_TRUE(hit(0.7));
  EXPECT_NEAR(times.back(), 1.0, 1e-9);
}

TEST(Transient, StiffDecayStableWithBE) {
  Decay sys(1e6);  // very stiff
  fa::TransientOptions options;
  options.t_end = 1e-3;
  options.dt_initial = 1e-7;
  options.method = fa::IntegrationMethod::kBackwardEuler;
  options.rel_tol = 1e-3;

  fa::TransientSolver solver(options);
  double final_y = 1.0;
  ASSERT_TRUE(solver.run(sys, [&](double, std::span<const double> y) {
    final_y = y[0];
  }));
  EXPECT_NEAR(final_y, 0.0, 1e-6);
  EXPECT_EQ(solver.stats().hard_failures, 0u);
}

TEST(Transient, DiscontinuousRhsCausesRejections) {
  // RHS flips sign discontinuously: the error controller must react by
  // rejecting steps around the flips (this is the mechanism behind the
  // paper's criticism of time-domain JA integration).
  class Flipper final : public fa::OdeSystem {
   public:
    [[nodiscard]] std::size_t size() const override { return 1; }
    void initial(std::span<double> y0) const override { y0[0] = 0.0; }
    void derivative(double t, std::span<const double>,
                    std::span<double> dydt) const override {
      dydt[0] = std::fmod(t, 0.2) < 0.1 ? 1.0 : -1.0;
    }
  };
  Flipper sys;
  fa::TransientOptions options;
  options.t_end = 1.0;
  options.dt_initial = 1e-3;
  options.rel_tol = 1e-6;
  options.abs_tol = 1e-12;

  fa::TransientSolver solver(options);
  ASSERT_TRUE(solver.run(sys));
  EXPECT_GT(solver.stats().steps_rejected_lte, 0u);
}
