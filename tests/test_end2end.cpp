// End-to-end reproduction tests: the full Fig. 1 pipeline and the headline
// claims, asserted at the level EXPERIMENTS.md reports.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "analysis/curve_compare.hpp"
#include "analysis/loop_metrics.hpp"
#include "analysis/stability.hpp"
#include "core/ams_ja.hpp"
#include "core/dc_sweep.hpp"
#include "core/facade.hpp"
#include "core/systemc_ja.hpp"
#include "mag/classic_ja.hpp"
#include "mag/time_domain_ja.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fa = ferro::analysis;
namespace fc = ferro::core;

using ferro::testsupport::major_loop;
using ferro::testsupport::paper_config;

TEST(Fig1, FullPipelineReproducesPublishedShape) {
  // The paper's Fig. 1: decaying triangular DC sweep, major loop +/-10 kA/m
  // with nested non-biased minor loops, B spanning roughly +/-1.5...2 T.
  const fm::JaParameters params = fm::paper_parameters_dual();
  const fm::TimelessConfig cfg = paper_config();

  const fw::HSweep sweep = fc::fig1_sweep(10.0);
  const auto result = fc::run_dc_sweep(params, cfg, sweep);
  ASSERT_EQ(result.curve.size(), sweep.h.size());

  // Field range is exactly the published axis.
  const fa::LoopMetrics metrics = fa::analyze_loop(result.curve);
  EXPECT_DOUBLE_EQ(metrics.h_peak, 10e3);
  // Flux density lands in the published band.
  EXPECT_GT(metrics.b_peak, 1.2);
  EXPECT_LT(metrics.b_peak, 2.2);
  // A real hysteresis loop: coercivity and remanence both present.
  EXPECT_GT(metrics.coercivity, 500.0);
  EXPECT_LT(metrics.coercivity, 4000.0);
  EXPECT_GT(metrics.remanence, 0.3);

  // Physicality over the whole trajectory (the clamp's job).
  const fa::SlopeReport slopes = fa::scan_slopes(result.curve);
  EXPECT_EQ(slopes.negative_segments, 0u);

  // The timeless model never needed a solver: zero failure modes by
  // construction — only clamp events.
  EXPECT_GT(result.stats.field_events, 0u);
}

TEST(Fig1, MinorLoopsAreNestedInsideMajorLoop) {
  const fm::JaParameters params = fm::paper_parameters_dual();
  const fm::TimelessConfig cfg = paper_config();

  // Major-loop envelope: second full cycle at 10 kA/m.
  const fw::HSweep major = major_loop(10.0, 2);
  const fm::BhCurve major_curve = fc::run_dc_sweep(params, cfg, major).curve;

  // Each shrinking cycle of the Fig. 1 excitation must stay inside it.
  fm::TimelessJa ja(params, cfg);
  const fw::HSweep full = fc::fig1_sweep(10.0);
  fm::BhCurve fig1_curve = fm::run_sweep(ja, full);

  // Points beyond the first major cycle belong to the minor loops.
  fm::BhCurve minor_part;
  bool past_major = false;
  double prev_h = 0.0;
  int extremes_seen = 0;
  for (const auto& p : fig1_curve.points()) {
    if (std::fabs(p.h) >= 10e3 - 1e-9) ++extremes_seen;
    if (extremes_seen >= 3) past_major = true;  // +10k, -10k, +10k done
    if (past_major) minor_part.append(p);
    prev_h = p.h;
  }
  (void)prev_h;
  ASSERT_GT(minor_part.size(), 100u);
  EXPECT_TRUE(fa::within_major_envelope(minor_part, major_curve, 5e-3));
}

TEST(Fig1, CsvArtefactWritten) {
  const fm::JaParameters params = fm::paper_parameters_dual();
  const fm::TimelessConfig cfg = paper_config();
  const auto result = fc::run_dc_sweep(params, cfg, fc::fig1_sweep(50.0));
  const std::string path = "test_fig1.csv";
  ASSERT_TRUE(result.curve.write_csv(path));
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
  std::filesystem::remove(path);
}

TEST(Claims, ThreeFrontendsVirtuallyIdentical) {
  // CLM4: SystemC-style, AMS-style and direct implementations of the same
  // technique agree — SystemC vs direct exactly, AMS within tolerance.
  const fm::JaParameters params = fm::paper_parameters();
  const fw::HSweep sweep = major_loop(20.0, 1);
  const fc::Facade facade(params, {25.0});

  const fm::BhCurve direct = facade.run(sweep, fc::Frontend::kDirect);
  const fm::BhCurve systemc = facade.run(sweep, fc::Frontend::kSystemC);
  const fm::BhCurve ams = facade.run(sweep, fc::Frontend::kAms);

  const fa::CurveDelta d_sc = fa::compare_pointwise(direct, systemc);
  EXPECT_EQ(d_sc.max_b, 0.0);

  const fa::CurveDelta d_ams = fa::compare_by_arc(direct, ams);
  EXPECT_LT(d_ams.rms_b, 0.05);
}

TEST(Claims, TimelessAvoidsSolverStressAtTurningPoints) {
  // CLM2: on the same triangular excitation, the `'INTEG`-style route
  // stresses the analogue solver (rejections at turning points) while the
  // timeless route keeps the solver's equations smooth.
  const fm::JaParameters params = fm::paper_parameters();
  const fw::Triangular tri(10e3, 0.02);

  fm::TimeDomainConfig td_cfg;
  td_cfg.t_end = 0.06;
  td_cfg.solver.dt_initial = 1e-7;
  td_cfg.solver.rel_tol = 1e-5;
  td_cfg.solver.abs_tol = 1e-10;
  const auto integ = fc::run_integ_style(params, tri, td_cfg);
  ASSERT_TRUE(integ.completed);

  fc::AmsJaConfig ams_cfg;
  ams_cfg.t_end = 0.06;
  ams_cfg.timeless.dhmax = 25.0;
  ams_cfg.solver.dt_initial = 1e-7;
  ams_cfg.solver.rel_tol = 1e-5;
  ams_cfg.solver.abs_tol = 1e-10;
  ams_cfg.solver.breakpoints = {0.005, 0.015, 0.025, 0.035, 0.045, 0.055};
  const auto timeless = fc::run_ams_timeless(params, tri, ams_cfg);
  ASSERT_TRUE(timeless.completed);

  const auto integ_rejections =
      integ.stats.steps_rejected_lte + integ.stats.steps_rejected_newton;
  const auto timeless_rejections = timeless.solver_stats.steps_rejected_lte +
                                   timeless.solver_stats.steps_rejected_newton;
  EXPECT_GT(integ_rejections, timeless_rejections);
  EXPECT_EQ(timeless.solver_stats.hard_failures, 0u);
}

TEST(Claims, UnclampedOriginalModelIsNonPhysical) {
  // CLM5 end-to-end: original (classic, unclamped) JA on the paper's
  // parameters shows negative BH slopes; the published (clamped, timeless)
  // model does not.
  const fm::JaParameters params = fm::paper_parameters();

  fm::ClassicConfig raw;
  raw.clamp_negative_slope = false;
  fm::ClassicJa original(params, raw);
  fm::BhCurve original_curve;
  const fw::HSweep sweep = major_loop(25.0, 1);
  for (const double h : sweep.h) {
    original.apply(h);
    original_curve.append(h, original.magnetisation(), original.flux_density());
  }
  EXPECT_GT(fa::scan_slopes(original_curve).negative_segments, 0u);

  const fm::TimelessConfig cfg = paper_config();
  const auto published = fc::run_dc_sweep(params, cfg, sweep);
  EXPECT_EQ(fa::scan_slopes(published.curve).negative_segments, 0u);
}
