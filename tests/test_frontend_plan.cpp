// FrontendPlan: the plan stage of the packed pipeline — routability of
// every (frontend, drive, config) combination, the deduplicated JA-free
// trajectory solves, the trace expansion's equivalence to the serial AMS
// frontend, and the MetricsWindow reject-don't-clamp contract on
// solver-placed kAms curves through both the per-scenario and packed paths.
#include <gtest/gtest.h>

#include <memory>

#include "core/ams_ja.hpp"
#include "core/batch_runner.hpp"
#include "core/frontend_plan.hpp"
#include "mag/ja_params.hpp"
#include "mag/ja_trace.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace fc = ferro::core;
namespace ts = ferro::testsupport;

namespace {

fc::Scenario base_scenario(fc::Frontend frontend) {
  fc::Scenario s;
  s.name = "plan";
  s.ja().params = fm::paper_parameters();
  s.ja().config = ts::paper_config();
  s.frontend = frontend;
  s.drive = ts::major_loop(10.0, 1);
  return s;
}

}  // namespace

TEST(FrontendPlan, RoutesEveryFrontendAndRefusesWhatItCannotReproduce) {
  // Sweep drives: all three frontends pack.
  EXPECT_EQ(fc::plan_route(base_scenario(fc::Frontend::kDirect)),
            fc::PlanRoute::kPackedSweep);
  EXPECT_EQ(fc::plan_route(base_scenario(fc::Frontend::kSystemC)),
            fc::PlanRoute::kPackedSweep);
  EXPECT_EQ(fc::plan_route(base_scenario(fc::Frontend::kAms)),
            fc::PlanRoute::kPackedTrace);

  // Time drives pack too — planned onto the frontend's own grid (or the
  // solver's own steps for kAms) — unless the waveform is missing.
  for (const auto frontend : {fc::Frontend::kDirect, fc::Frontend::kSystemC,
                              fc::Frontend::kAms}) {
    fc::Scenario timed = base_scenario(frontend);
    timed.drive = fc::TimeDrive{std::make_shared<fw::Triangular>(10e3, 0.02),
                                0.0, 0.04, 500};
    EXPECT_NE(fc::plan_route(timed), fc::PlanRoute::kFallback);
    timed.drive = fc::TimeDrive{};
    EXPECT_EQ(fc::plan_route(timed), fc::PlanRoute::kFallback);
  }

  // The kernel's lockstep subset gates the sweep frontends; the trace
  // planner unrolls sub-steps, so only the extension schemes gate kAms.
  fc::Scenario substep = base_scenario(fc::Frontend::kDirect);
  substep.ja().config.substep_max = 50.0;
  EXPECT_EQ(fc::plan_route(substep), fc::PlanRoute::kFallback);
  substep.frontend = fc::Frontend::kAms;
  EXPECT_EQ(fc::plan_route(substep), fc::PlanRoute::kPackedTrace);

  for (const auto frontend : {fc::Frontend::kDirect, fc::Frontend::kSystemC,
                              fc::Frontend::kAms}) {
    fc::Scenario heun = base_scenario(frontend);
    heun.ja().config.scheme = fm::HIntegrator::kHeun;
    EXPECT_EQ(fc::plan_route(heun), fc::PlanRoute::kFallback);
  }

  // kSystemC routability is the clamp pair the process network hard-codes.
  fc::Scenario clamps = base_scenario(fc::Frontend::kSystemC);
  clamps.ja().config.clamp_direction = false;
  EXPECT_EQ(fc::plan_route(clamps), fc::PlanRoute::kFallback);
  clamps.frontend = fc::Frontend::kAms;  // the trace honours any clamp flags
  EXPECT_EQ(fc::plan_route(clamps), fc::PlanRoute::kPackedTrace);

  // Invalid parameters always fall back (run_scenario owns the error text).
  fc::Scenario invalid = base_scenario(fc::Frontend::kDirect);
  invalid.ja().params.c = 1.5;
  EXPECT_EQ(fc::plan_route(invalid), fc::PlanRoute::kFallback);
}

TEST(FrontendPlan, SharesTrajectorySolvesAcrossMaterialsAndWindows) {
  // Materials and discretisations differ; the excitation does not — the
  // JA-free H(t) solve must be planned once per distinct drive.
  const auto waveform = std::make_shared<fw::Triangular>(10e3, 0.02);
  std::vector<fc::Scenario> scenarios;
  for (int i = 0; i < 4; ++i) {
    fc::Scenario s = base_scenario(fc::Frontend::kAms);
    s.ja().params = fm::material_library()[i % fm::material_library().size()].params;
    s.ja().config.dhmax = 20.0 + 5.0 * i;
    s.drive = fc::TimeDrive{waveform, 0.0, 0.04, 100};
    scenarios.push_back(std::move(s));
  }
  // Same waveform, different window: a separate solve.
  scenarios.push_back(base_scenario(fc::Frontend::kAms));
  scenarios.back().drive = fc::TimeDrive{waveform, 0.0, 0.02, 100};
  // Two sweep-driven lanes with identical sample values: one shared solve.
  scenarios.push_back(base_scenario(fc::Frontend::kAms));
  scenarios.push_back(base_scenario(fc::Frontend::kAms));

  const fc::FrontendPlanSet plans(scenarios);
  EXPECT_EQ(plans.trajectory_jobs(), 3u);
  EXPECT_EQ(plans.plan(0).trajectory, plans.plan(1).trajectory);
  EXPECT_EQ(plans.plan(0).trajectory, plans.plan(3).trajectory);
  EXPECT_NE(plans.plan(0).trajectory, plans.plan(4).trajectory);
  EXPECT_EQ(plans.plan(5).trajectory, plans.plan(6).trajectory);
  EXPECT_NE(plans.plan(5).trajectory, plans.plan(0).trajectory);
}

TEST(FrontendPlan, PlannedTrajectoryMatchesTheRidingAlongSolve) {
  // The JA never enters the solver's residual, so the accepted H sequence
  // of the JA-free planning solve must equal run_ams_timeless's curve
  // fields exactly — solver stats included.
  const fw::Triangular waveform(10e3, 0.02);
  fc::AmsJaConfig config;
  config.t_start = 0.0;
  config.t_end = 0.04;
  config.timeless = ts::paper_config();

  const fc::AmsTrajectory trajectory =
      fc::plan_ams_trajectory(waveform, config);
  const fc::AmsJaResult reference =
      fc::run_ams_timeless(fm::paper_parameters(), waveform, config);

  ASSERT_EQ(trajectory.h.size(), reference.curve.size());
  for (std::size_t j = 0; j < trajectory.h.size(); ++j) {
    ASSERT_EQ(trajectory.h[j], reference.curve.points()[j].h) << "step " << j;
  }
  EXPECT_EQ(trajectory.completed, reference.completed);
  EXPECT_EQ(trajectory.solver_stats.steps_accepted,
            reference.solver_stats.steps_accepted);
  EXPECT_EQ(trajectory.solver_stats.newton_iterations,
            reference.solver_stats.newton_iterations);
}

TEST(FrontendPlan, TraceExpansionCountsMatchTheScalarModel) {
  // build_ja_trace's planned counters are H-only facts; they must agree
  // with the scalar model replaying the same trajectory, across sub-step
  // policies (0 = single-step events, the AMS dhmax default, a custom one).
  const fw::HSweep sweep = ts::major_loop(40.0, 1);
  for (const double substep : {0.0, 25.0, 60.0}) {
    fm::TimelessConfig config = ts::paper_config();
    config.substep_max = substep;

    const fm::JaTrace trace = fm::build_ja_trace(sweep.h, config);
    fm::TimelessJa scalar(fm::paper_parameters(), config);
    for (std::size_t s = 1; s < sweep.h.size(); ++s) scalar.apply(sweep.h[s]);

    EXPECT_EQ(trace.planned.samples, scalar.stats().samples) << substep;
    EXPECT_EQ(trace.planned.field_events, scalar.stats().field_events)
        << substep;
    EXPECT_EQ(trace.planned.integration_steps,
              scalar.stats().integration_steps)
        << substep;
    EXPECT_EQ(trace.record_rows.size(), sweep.h.size() - 1) << substep;
  }
}

TEST(FrontendPlan, AmsMetricsWindowThatFitsIsHonouredInBothPaths) {
  // The solver places its own steps, so a valid window must be sized from
  // the curve kAms actually produces. Plan the trajectory first to learn
  // that length, then run with a window over its second half — run() and
  // the packed path must agree on the metrics exactly.
  fc::Scenario s = base_scenario(fc::Frontend::kAms);
  const fc::AmsSweepDrive drive =
      fc::ams_drive_for_sweep(std::get<fw::HSweep>(s.drive), s.ja().config);
  const std::size_t curve_len =
      fc::plan_ams_trajectory(drive.pwl, drive.config).h.size();
  ASSERT_GT(curve_len, 4u);
  s.metrics_window = fc::MetricsWindow{curve_len / 2, curve_len - 1};

  const fc::ScenarioResult serial = fc::run_scenario(s);
  ASSERT_TRUE(serial.ok()) << serial.error;
  EXPECT_EQ(serial.curve.size(), curve_len);
  EXPECT_NE(serial.metrics.b_peak, 0.0);

  const auto packed = fc::BatchRunner({.threads = 1})
                          .run({s}, {.packing = fc::Packing::kExact});
  ASSERT_TRUE(packed[0].ok()) << packed[0].error;
  EXPECT_EQ(packed[0].metrics.area, serial.metrics.area);
  EXPECT_EQ(packed[0].metrics.b_peak, serial.metrics.b_peak);
  EXPECT_EQ(packed[0].metrics.coercivity, serial.metrics.coercivity);
}

TEST(FrontendPlan, AmsMetricsWindowOverrunIsRejectedInBothPaths) {
  // The documented reject-don't-clamp contract: a window sized from the
  // input sweep overruns the solver-placed curve and must surface as a
  // per-job error (identically through run() and the packed path), never be
  // clamped to the curve that exists.
  fc::Scenario s = base_scenario(fc::Frontend::kAms);
  const std::size_t sweep_len = std::get<fw::HSweep>(s.drive).size();
  s.metrics_window = fc::MetricsWindow{0, sweep_len * 10};

  const fc::ScenarioResult serial = fc::run_scenario(s);
  EXPECT_FALSE(serial.ok());
  EXPECT_NE(serial.error.detail.find("does not fit"), std::string::npos)
      << serial.error;
  // The curve itself completed before the metrics step failed.
  EXPECT_GT(serial.curve.size(), 0u);

  const auto packed = fc::BatchRunner({.threads = 1})
                          .run({s}, {.packing = fc::Packing::kExact});
  EXPECT_FALSE(packed[0].ok());
  EXPECT_EQ(packed[0].error, serial.error);
  EXPECT_EQ(packed[0].curve.size(), serial.curve.size());
}
