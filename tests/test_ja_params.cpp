// Tests for parameter validation and the material library.
#include <gtest/gtest.h>

#include "mag/ja_params.hpp"

namespace fm = ferro::mag;

TEST(JaParameters, PaperSetMatchesPublication) {
  const fm::JaParameters p = fm::paper_parameters();
  EXPECT_DOUBLE_EQ(p.k, 4000.0);
  EXPECT_DOUBLE_EQ(p.c, 0.1);
  EXPECT_DOUBLE_EQ(p.ms, 1.6e6);
  EXPECT_DOUBLE_EQ(p.alpha, 0.003);
  EXPECT_DOUBLE_EQ(p.a, 2000.0);
  EXPECT_DOUBLE_EQ(p.a2, 3500.0);
  EXPECT_EQ(p.kind, fm::AnhystereticKind::kAtan);
  EXPECT_TRUE(p.is_valid());
}

TEST(JaParameters, DualVariantUsesA2) {
  const fm::JaParameters p = fm::paper_parameters_dual();
  EXPECT_EQ(p.kind, fm::AnhystereticKind::kDualAtan);
  EXPECT_TRUE(p.is_valid());
}

TEST(JaParameters, CouplingField) {
  const fm::JaParameters p = fm::paper_parameters();
  EXPECT_DOUBLE_EQ(p.coupling_field(), 4800.0);  // alpha*Ms > k: clamp matters
}

TEST(JaParameters, ValidationCatchesEachViolation) {
  fm::JaParameters p = fm::paper_parameters();
  p.ms = -1.0;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters();
  p.a = 0.0;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters();
  p.k = -5.0;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters();
  p.c = 1.0;  // must be < 1
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters();
  p.c = -0.1;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters();
  p.alpha = -1e-3;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters_dual();
  p.a2 = 0.0;
  EXPECT_FALSE(p.is_valid());

  p = fm::paper_parameters_dual();
  p.blend = 1.5;
  EXPECT_FALSE(p.is_valid());
}

TEST(JaParameters, A2IgnoredOutsideDualKind) {
  fm::JaParameters p = fm::paper_parameters();  // kind = kAtan
  p.a2 = -1.0;                                  // invalid but unused
  EXPECT_TRUE(p.is_valid());
}

TEST(JaParameters, ValidationMessagesName) {
  fm::JaParameters p = fm::paper_parameters();
  p.ms = 0.0;
  p.k = 0.0;
  const auto problems = p.validate();
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_NE(problems[0].find("ms"), std::string::npos);
  EXPECT_NE(problems[1].find("k"), std::string::npos);
}

TEST(MaterialLibrary, ContainsPaperSets) {
  EXPECT_NE(fm::find_material("paper-2006"), nullptr);
  EXPECT_NE(fm::find_material("paper-2006-dual"), nullptr);
  EXPECT_EQ(fm::find_material("unobtainium"), nullptr);
}

TEST(MaterialLibrary, AllEntriesValid) {
  for (const auto& m : fm::material_library()) {
    EXPECT_TRUE(m.params.is_valid()) << m.name;
    EXPECT_FALSE(m.description.empty()) << m.name;
  }
}

TEST(MaterialLibrary, AtLeastFiveMaterials) {
  EXPECT_GE(fm::material_library().size(), 5u);
}

TEST(AnhystereticKindNames, RoundTrip) {
  EXPECT_EQ(fm::to_string(fm::AnhystereticKind::kClassicLangevin),
            "classic-langevin");
  EXPECT_EQ(fm::to_string(fm::AnhystereticKind::kAtan), "atan");
  EXPECT_EQ(fm::to_string(fm::AnhystereticKind::kDualAtan), "dual-atan");
}
