// Deterministic fault injection (core/fault_injection.hpp): the injector's
// own arm/fire semantics run in every build; the engine-integration tests —
// throws, poison, and stalls at the instrumented sites driving the batch
// engine's drain/quarantine/accounting contracts — need the hooks compiled
// in (cmake -DFERRO_FAULT_INJECTION=ON) and skip themselves otherwise.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/fault_injection.hpp"
#include "core/result_sink.hpp"
#include "mag/ja_params.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"
#include "wave/sweep.hpp"

namespace fc = ferro::core;
namespace fm = ferro::mag;
namespace fw = ferro::wave;
namespace ts = ferro::testsupport;

namespace {

/// Homogeneous packable workload: kDirect sweeps over library materials.
std::vector<fc::Scenario> sweep_batch(std::size_t count) {
  const auto& library = fm::material_library();
  std::vector<fc::Scenario> scenarios(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& material = library[i % library.size()];
    const double amp = ts::saturation_amplitude(material.params);
    scenarios[i].name = material.name + "#" + std::to_string(i);
    scenarios[i].ja().params = material.params;
    scenarios[i].ja().config.dhmax = amp / 150.0;
    scenarios[i].drive = fw::SweepBuilder(amp / 200.0).cycles(amp, 1).build();
  }
  return scenarios;
}

/// kAms time drives with pairwise-distinct excitations, so every scenario
/// owns its own trajectory job (no dedup sharing).
std::vector<fc::Scenario> ams_batch(std::size_t count) {
  const auto& library = fm::material_library();
  std::vector<fc::Scenario> scenarios(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& material = library[i % library.size()];
    const double amp =
        ts::saturation_amplitude(material.params) * (1.0 + 0.1 * i);
    scenarios[i].name = "ams#" + std::to_string(i);
    scenarios[i].ja().params = material.params;
    scenarios[i].ja().config.dhmax = amp / 150.0;
    scenarios[i].frontend = fc::Frontend::kAms;
    scenarios[i].drive = fc::TimeDrive{
        std::make_shared<fw::Triangular>(amp, 0.02), 0.0, 0.04, 200};
  }
  return scenarios;
}

class RecordingSink : public fc::ResultSink {
 public:
  void on_start(std::size_t total) override { this->total = total; }
  void on_result(std::size_t index, fc::ScenarioResult&& result) override {
    received.emplace_back(index, std::move(result));
  }
  void on_complete() override { ++completes; }

  std::vector<std::pair<std::size_t, fc::ScenarioResult>> received;
  std::size_t total = 0;
  int completes = 0;
};

/// Disarms every site around each test so armings never leak across cases.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { fc::FaultInjector::reset(); }
  void TearDown() override { fc::FaultInjector::reset(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Injector semantics (run in every build: only the macro is compile-gated)
// ---------------------------------------------------------------------------

TEST_F(FaultInjection, UnarmedSitesCountHitsWithoutActing) {
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kSinkDeliver));
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kSinkDeliver));
  EXPECT_EQ(fc::FaultInjector::hits(fc::FaultSite::kSinkDeliver), 2u);
  EXPECT_EQ(fc::FaultInjector::hits(fc::FaultSite::kQueuePush), 0u);
}

TEST_F(FaultInjection, ThrowFiresOnTheNthHitForCountFirings) {
  fc::FaultInjector::arm(fc::FaultSite::kLaneCompute,
                         {fc::FaultAction::kThrow, /*nth=*/3, /*count=*/2});
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute));
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute));
  EXPECT_THROW(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute),
               fc::InjectedFault);
  EXPECT_THROW(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute),
               fc::InjectedFault);
  // Budget spent: the site goes quiet again.
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute));
  EXPECT_EQ(fc::FaultInjector::hits(fc::FaultSite::kLaneCompute), 5u);
}

TEST_F(FaultInjection, PoisonReturnsTrueAndResetDisarms) {
  fc::FaultInjector::arm(fc::FaultSite::kLaneCompute,
                         {fc::FaultAction::kPoison, 1, 1});
  EXPECT_TRUE(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute));
  fc::FaultInjector::reset();
  EXPECT_FALSE(fc::FaultInjector::fire(fc::FaultSite::kLaneCompute));
  EXPECT_EQ(fc::FaultInjector::hits(fc::FaultSite::kLaneCompute), 1u);
}

TEST_F(FaultInjection, InjectedFaultNamesItsSite) {
  fc::FaultInjector::arm(fc::FaultSite::kQueuePush,
                         {fc::FaultAction::kThrow, 1, 1});
  try {
    (void)fc::FaultInjector::fire(fc::FaultSite::kQueuePush);
    FAIL() << "expected InjectedFault";
  } catch (const fc::InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("queue-push"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Engine integration (need the instrumented hooks compiled in)
// ---------------------------------------------------------------------------

#ifdef FERRO_FAULT_INJECTION

TEST_F(FaultInjection, ThrowAtLaneComputeFailsThatLaneOnly) {
  const auto scenarios = sweep_batch(6);
  fc::BatchRunner runner(fc::BatchOptions{1});
  const auto reference =
      runner.run(scenarios, {.packing = fc::Packing::kExact});
  for (const auto& r : reference) ASSERT_TRUE(r.ok()) << r.error;

  fc::FaultInjector::arm(fc::FaultSite::kLaneCompute,
                         {fc::FaultAction::kThrow, /*nth=*/3, /*count=*/1});
  fc::BatchReport report;
  const auto results =
      runner.run(scenarios, {.packing = fc::Packing::kExact}, &report);
  ASSERT_EQ(results.size(), scenarios.size());
  EXPECT_EQ(fc::FaultInjector::hits(fc::FaultSite::kLaneCompute),
            scenarios.size());

  std::size_t injected = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      // Healthy neighbours are untouched: bitwise equal to the clean run.
      ASSERT_EQ(results[i].curve.size(), reference[i].curve.size());
      for (std::size_t j = 0; j < results[i].curve.size(); ++j) {
        ASSERT_EQ(results[i].curve.points()[j].b,
                  reference[i].curve.points()[j].b);
      }
    } else {
      ++injected;
      EXPECT_EQ(results[i].error.code, fc::ErrorCode::kInternal);
      EXPECT_NE(results[i].error.detail.find("injected fault"),
                std::string::npos);
    }
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_TRUE(report.completed());
}

TEST_F(FaultInjection, PoisonAtLaneComputeDrivesTheQuarantineRetry) {
  const auto scenarios = sweep_batch(6);
  fc::BatchRunner runner(fc::BatchOptions{1});
  const auto reference =
      runner.run(scenarios, {.packing = fc::Packing::kExact});

  fc::FaultInjector::arm(fc::FaultSite::kLaneCompute,
                         {fc::FaultAction::kPoison, /*nth=*/2, /*count=*/1});
  fc::BatchReport report;
  const auto results =
      runner.run(scenarios, {.packing = fc::Packing::kExact}, &report);
  ASSERT_EQ(results.size(), scenarios.size());
  // The poisoned lane was retried through the scalar exact path, which for
  // a kExact packed batch reproduces the same bits — so EVERY result,
  // including the quarantined one, matches the clean run.
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error;
    ASSERT_EQ(results[i].curve.size(), reference[i].curve.size());
    for (std::size_t j = 0; j < results[i].curve.size(); ++j) {
      ASSERT_EQ(results[i].curve.points()[j].h,
                reference[i].curve.points()[j].h);
      ASSERT_EQ(results[i].curve.points()[j].m,
                reference[i].curve.points()[j].m);
      ASSERT_EQ(results[i].curve.points()[j].b,
                reference[i].curve.points()[j].b);
    }
  }
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_TRUE(report.completed());
}

TEST_F(FaultInjection, ThrowAtTrajectorySolveReportsSolverDiverged) {
  const auto scenarios = ams_batch(3);
  fc::BatchRunner runner(fc::BatchOptions{1});
  fc::FaultInjector::arm(fc::FaultSite::kTrajectorySolve,
                         {fc::FaultAction::kThrow, /*nth=*/1, /*count=*/1});
  fc::BatchReport report;
  const auto results =
      runner.run(scenarios, {.packing = fc::Packing::kExact}, &report);
  ASSERT_EQ(results.size(), scenarios.size());
  std::size_t injected = 0;
  for (const auto& r : results) {
    if (r.ok()) continue;
    ++injected;
    EXPECT_EQ(r.error.code, fc::ErrorCode::kSolverDiverged);
    EXPECT_NE(r.error.detail.find("injected fault at trajectory-solve"),
              std::string::npos);
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_TRUE(report.completed());
}

TEST_F(FaultInjection, ThrowAtSinkDeliverLosesOneDeliveryAndContinues) {
  const auto scenarios = sweep_batch(8);
  fc::BatchRunner runner(fc::BatchOptions{1});  // inline delivery, in order
  fc::FaultInjector::arm(fc::FaultSite::kSinkDeliver,
                         {fc::FaultAction::kThrow, /*nth=*/2, /*count=*/1});
  RecordingSink sink;
  const auto summary = runner.run(scenarios, sink);
  EXPECT_EQ(summary.sink_error_count, 1u);
  EXPECT_EQ(summary.sink_error.code, fc::ErrorCode::kSinkError);
  EXPECT_NE(summary.sink_error.detail.find("injected fault at sink-deliver"),
            std::string::npos);
  EXPECT_EQ(summary.delivered, scenarios.size() - 1);
  EXPECT_EQ(summary.discarded_deliveries, 1u);
  EXPECT_EQ(summary.delivered + summary.discarded_deliveries,
            scenarios.size());
  // Later results were still offered after the failed delivery.
  EXPECT_EQ(sink.received.size(), scenarios.size() - 1);
  EXPECT_EQ(sink.completes, 1);
  EXPECT_EQ(summary.failed_jobs, 0u);
}

TEST_F(FaultInjection, ThrowAtQueuePushKeepsTheAccountingClosed) {
  const auto scenarios = sweep_batch(16);
  fc::BatchRunner runner(fc::BatchOptions{4});  // queue + consumer engaged
  fc::FaultInjector::arm(fc::FaultSite::kQueuePush,
                         {fc::FaultAction::kThrow, /*nth=*/3, /*count=*/1});
  RecordingSink sink;
  const auto summary =
      runner.run(scenarios, sink, {.packing = fc::Packing::kExact});
  // The lost hand-off is counted, never silently dropped, and the batch
  // neither deadlocks nor unwinds a worker.
  EXPECT_EQ(summary.discarded_deliveries, 1u);
  EXPECT_EQ(summary.delivered, scenarios.size() - 1);
  EXPECT_EQ(summary.sink_error.code, fc::ErrorCode::kInternal);
  EXPECT_NE(summary.sink_error.detail.find("hand-off"), std::string::npos);
  EXPECT_EQ(sink.received.size(), scenarios.size() - 1);
  EXPECT_EQ(sink.completes, 1);
}

TEST_F(FaultInjection, StallAtLaneComputeWidensTheCancellationWindow) {
  const auto scenarios = sweep_batch(32);
  fc::BatchRunner runner(fc::BatchOptions{2});
  // Every lane finalisation sleeps, so a cancel fired shortly after launch
  // reliably lands mid-batch — the drain contract under load.
  fc::FaultInjector::arm(
      fc::FaultSite::kLaneCompute,
      {fc::FaultAction::kStall, /*nth=*/1, /*count=*/64, /*stall_ms=*/5});
  fc::RunLimits limits;
  RecordingSink sink;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    limits.cancel.cancel();
  });
  const auto summary = runner.run(
      scenarios, sink, {.packing = fc::Packing::kExact, .limits = limits});
  canceller.join();
  // Graceful drain: every index delivered exactly once, computed or not.
  EXPECT_EQ(summary.delivered, scenarios.size());
  EXPECT_EQ(summary.discarded_deliveries, 0u);
  EXPECT_EQ(sink.received.size(), scenarios.size());
  EXPECT_EQ(sink.completes, 1);
  std::size_t cancelled = 0;
  for (const auto& [index, result] : sink.received) {
    if (!result.ok()) {
      EXPECT_EQ(result.error.code, fc::ErrorCode::kCancelled) << result.error;
      ++cancelled;
    }
  }
  EXPECT_EQ(cancelled, summary.cancelled_jobs);
  if (summary.stop.ok()) {
    // The batch outran the canceller (slow machine): nothing was shed.
    EXPECT_EQ(cancelled, 0u);
  } else {
    EXPECT_EQ(summary.stop.code, fc::ErrorCode::kCancelled);
  }
}

#else  // !FERRO_FAULT_INJECTION

TEST_F(FaultInjection, EngineHooksNeedAnInstrumentedBuild) {
  GTEST_SKIP() << "engine-side hooks compiled out; reconfigure with "
                  "-DFERRO_FAULT_INJECTION=ON to run the integration tests";
}

#endif  // FERRO_FAULT_INJECTION
