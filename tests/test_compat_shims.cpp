// The deprecated pre-RunOptions surface: run_packed / run_streaming /
// run_packed_streaming / run(limits), the JaFacade alias and the
// AmsJaResult::ja_stats() accessor survive as thin shims that forward to
// the redesigned API with identical results. This file is the ONE place
// that still calls them (everything else migrated in the redesign), so the
// deprecation warnings are silenced locally — with FERRO_WERROR any new
// caller elsewhere still breaks the build.
#include <gtest/gtest.h>

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <vector>

#include "core/ams_ja.hpp"
#include "core/batch_runner.hpp"
#include "core/facade.hpp"
#include "core/result_sink.hpp"
#include "support/fixtures.hpp"
#include "wave/standard.hpp"

namespace fm = ferro::mag;
namespace fc = ferro::core;
namespace fw = ferro::wave;
namespace ts = ferro::testsupport;

namespace {

std::vector<fc::Scenario> workload() {
  std::vector<fc::Scenario> scenarios;
  for (int i = 0; i < 4; ++i) {
    fc::Scenario s;
    s.name = "job/" + std::to_string(i);
    fc::JaSpec spec;
    spec.params = fm::paper_parameters();
    spec.params.k = 3000.0 + 500.0 * i;
    spec.config = ts::paper_config();
    s.model = spec;
    s.drive = ts::major_loop(25.0, 1);
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

void expect_same(const std::vector<fc::ScenarioResult>& a,
                 const std::vector<fc::ScenarioResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].error.code, b[i].error.code);
    ASSERT_EQ(a[i].curve.size(), b[i].curve.size());
    for (std::size_t j = 0; j < a[i].curve.size(); ++j) {
      EXPECT_EQ(a[i].curve.points()[j].b, b[i].curve.points()[j].b);
    }
    EXPECT_EQ(a[i].stats.field_events, b[i].stats.field_events);
  }
}

}  // namespace

TEST(CompatShims, RunPackedForwardsToPackingOption) {
  const auto scenarios = workload();
  const fc::BatchRunner runner({.threads = 2});
  expect_same(runner.run_packed(scenarios),
              runner.run(scenarios, {.packing = fc::Packing::kExact}));
  expect_same(runner.run_packed(scenarios, fm::BatchMath::kFast),
              runner.run(scenarios, {.packing = fc::Packing::kFast}));
}

TEST(CompatShims, RunWithLimitsForwardsToLimitsOption) {
  const auto scenarios = workload();
  const fc::BatchRunner runner({.threads = 2});
  const fc::RunLimits limits;  // run to completion
  fc::BatchReport shim_report;
  fc::BatchReport new_report;
  expect_same(runner.run(scenarios, limits, &shim_report),
              runner.run(scenarios, fc::RunOptions{.limits = limits},
                         &new_report));
  EXPECT_EQ(shim_report.stop.code, new_report.stop.code);
}

TEST(CompatShims, StreamingShimsForwardToSinkOverload) {
  const auto scenarios = workload();
  const fc::BatchRunner runner({.threads = 2});

  fc::CollectingSink shim_sink;
  const auto shim_summary = runner.run_streaming(scenarios, shim_sink);
  fc::CollectingSink new_sink;
  const auto new_summary = runner.run(scenarios, new_sink);
  EXPECT_TRUE(shim_summary.ok());
  EXPECT_EQ(shim_summary.delivered, new_summary.delivered);
  expect_same(shim_sink.results(), new_sink.results());

  fc::CollectingSink packed_shim_sink;
  const auto packed_summary =
      runner.run_packed_streaming(scenarios, packed_shim_sink);
  fc::CollectingSink packed_new_sink;
  runner.run(scenarios, packed_new_sink, {.packing = fc::Packing::kExact});
  EXPECT_EQ(packed_summary.delivered, scenarios.size());
  expect_same(packed_shim_sink.results(), packed_new_sink.results());
}

TEST(CompatShims, JaFacadeAliasStillRuns) {
  const fc::JaFacade facade(fm::paper_parameters(), ts::paper_config());
  const fc::Facade replacement(fm::paper_parameters(), ts::paper_config());
  const fw::HSweep sweep = ts::major_loop(20.0, 1);
  const fm::BhCurve a = facade.run(sweep);
  const fm::BhCurve b = replacement.run(sweep);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].b, b.points()[i].b);
  }
}

TEST(CompatShims, AmsResultJaStatsAliasesStats) {
  const fw::Triangular tri(10e3, 0.02);
  fc::AmsJaConfig config;
  config.t_end = 0.04;
  config.timeless.dhmax = 25.0;
  const auto result = fc::run_ams_timeless(fm::paper_parameters(), tri, config);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(&result.ja_stats(), &result.stats);
  EXPECT_EQ(result.ja_stats().field_events, result.stats.field_events);
}

#pragma GCC diagnostic pop
