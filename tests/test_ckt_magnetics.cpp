// Tests for the hysteretic circuit devices: JA-core inductor and
// transformer inside the MNA transient engine.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "ckt/engine.hpp"
#include "ckt/ja_inductor.hpp"
#include "ckt/netlist.hpp"
#include "ckt/rlc.hpp"
#include "ckt/sources.hpp"
#include "ckt/transformer.hpp"
#include "mag/bh.hpp"
#include "util/constants.hpp"
#include "wave/standard.hpp"

namespace fk = ferro::ckt;
namespace fm = ferro::mag;
namespace fw = ferro::wave;

namespace {

fm::CoreGeometry small_core() {
  fm::CoreGeometry geom;
  geom.area = 1e-4;        // 1 cm^2
  geom.path_length = 0.1;  // 10 cm
  geom.turns = 100;
  return geom;
}

fm::TimelessConfig core_config() {
  fm::TimelessConfig cfg;
  cfg.dhmax = 5.0;  // fine threshold for smooth circuit coupling
  return cfg;
}

}  // namespace

TEST(JaInductor, DcBehavesAsShort) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround, 1.0);
  ckt.add<fk::Resistor>("R", in, out, 100.0);
  ckt.add<fk::JaInductor>("Lcore", out, fk::kGround, small_core(),
                          fm::paper_parameters(), core_config());

  std::vector<double> x;
  ASSERT_TRUE(fk::solve_dc(ckt, x).ok());
  EXPECT_NEAR(x[static_cast<std::size_t>(out)], 0.0, 1e-4);  // quasi-short
}

TEST(JaInductor, SineDriveMagnetisesCore) {
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  // 50 Hz drive sized to push the core around its knee.
  ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                             std::make_shared<fw::Sine>(25.0, 50.0));
  ckt.add<fk::Resistor>("R", in, out, 5.0);
  auto& core = ckt.add<fk::JaInductor>("Lcore", out, fk::kGround, small_core(),
                                       fm::paper_parameters(), core_config());

  fk::TransientOptions options;
  options.t_end = 0.04;  // two cycles
  options.dt_initial = 1e-6;
  options.dt_max = 5e-5;

  double max_b = 0.0, max_h = 0.0, max_i = 0.0;
  fk::CircuitStats stats;
  ASSERT_TRUE(fk::run_transient(
      ckt, options,
      [&](const fk::Solution& sol) {
        max_b = std::max(max_b, std::fabs(core.flux_density()));
        max_h = std::max(max_h, std::fabs(core.field()));
        max_i = std::max(max_i, std::fabs(sol.branch_current(1)));
      },
      &stats).ok());

  EXPECT_GT(max_b, 0.2);   // core actually magnetised
  EXPECT_GT(max_h, 100.0); // field well past dhmax
  EXPECT_GT(max_i, 0.05);
  EXPECT_EQ(stats.hard_failures, 0u);
}

TEST(JaInductor, VoltSecondBalance) {
  // Faraday consistency: integral of the winding voltage equals the flux
  // linkage swing of the committed model.
  fk::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                             std::make_shared<fw::Sine>(20.0, 50.0));
  ckt.add<fk::Resistor>("R", in, out, 2.0);
  auto& core = ckt.add<fk::JaInductor>("Lcore", out, fk::kGround, small_core(),
                                       fm::paper_parameters(), core_config());

  fk::TransientOptions options;
  options.t_end = 0.02;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  const fm::CoreGeometry geom = small_core();
  double volt_seconds = 0.0;
  double prev_t = 0.0, prev_v = 0.0;
  bool first = true;
  double lambda_start = 0.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    const double v = sol.v(out);
    if (first) {
      lambda_start = geom.linkage_from_b(core.flux_density());
      first = false;
    } else {
      volt_seconds += 0.5 * (v + prev_v) * (sol.t - prev_t);
    }
    prev_t = sol.t;
    prev_v = v;
  }).ok());
  const double lambda_end = geom.linkage_from_b(core.flux_density());
  const double swing = lambda_end - lambda_start;
  EXPECT_NEAR(volt_seconds, swing, 0.05 * std::max(1e-3, std::fabs(swing)));
}

TEST(JaInductor, CoreSaturationClampsFluxNotCurrent) {
  // Saturation signature: at 10 V the volt-second demand is ~3.2 T — far
  // beyond mu0*(Ms+H). The core must clamp B near saturation while the
  // current keeps growing (limited only by the series resistor).
  const auto run_at = [&](double volts, double* peak_b) {
    fk::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                               std::make_shared<fw::Sine>(volts, 50.0));
    ckt.add<fk::Resistor>("R", in, out, 1.0);
    auto& core = ckt.add<fk::JaInductor>("Lcore", out, fk::kGround,
                                         small_core(), fm::paper_parameters(),
                                         core_config());
    fk::TransientOptions options;
    options.t_end = 0.04;
    options.dt_initial = 1e-6;
    options.dt_max = 2e-5;
    double peak_i = 0.0;
    *peak_b = 0.0;
    EXPECT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
      if (sol.t > 0.02) {
        peak_i = std::max(peak_i, std::fabs(sol.branch_current(1)));
        *peak_b = std::max(*peak_b, std::fabs(core.flux_density()));
      }
    }).ok());
    return peak_i;
  };

  double b_low = 0.0, b_high = 0.0;
  const double i_low = run_at(3.0, &b_low);
  const double i_high = run_at(10.0, &b_high);
  ASSERT_GT(i_low, 0.0);

  // Flux pinned near the saturation knee: nowhere close to the 3.2 T the
  // volt-seconds demand.
  EXPECT_GT(b_high, 1.3);
  EXPECT_LT(b_high, 2.3);
  // Current grows much faster than flux once the core saturates: the flux
  // ratio stays well under the 10/3 voltage ratio.
  EXPECT_GT(i_high / i_low, 2.5);
  EXPECT_LT(b_high / b_low, 2.4);
}

TEST(JaInductor, StateRewindOnRejectedStepsIsClean) {
  // Run the same circuit twice: once with generous steps (forces internal
  // retries) and once with tiny forced steps. The committed core state must
  // end at nearly the same place — rejected trials must not leak into the
  // hysteresis trajectory.
  const auto run_with = [&](double dt_max) {
    fk::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                               std::make_shared<fw::Sine>(20.0, 50.0));
    ckt.add<fk::Resistor>("R", in, out, 5.0);
    auto& core = ckt.add<fk::JaInductor>("L", out, fk::kGround, small_core(),
                                         fm::paper_parameters(), core_config());
    fk::TransientOptions options;
    options.t_end = 0.01;
    options.dt_initial = 1e-6;
    options.dt_max = dt_max;
    EXPECT_TRUE(fk::run_transient(ckt, options, {}).ok());
    return core.flux_density();
  };
  const double b_coarse = run_with(1e-4);
  const double b_fine = run_with(1e-5);
  EXPECT_NEAR(b_coarse, b_fine, 0.1);
}

namespace {

/// A soft, low-loss core (grain-oriented Si class) sized so a ~1.5 V, 50 Hz
/// drive swings ~0.5 T: the regime where a transformer behaves like one.
fm::JaParameters soft_params() {
  return fm::find_material("grain-oriented-si")->params;
}

fm::TimelessConfig soft_config() {
  fm::TimelessConfig cfg;
  cfg.dhmax = 0.5;  // the soft material's field scale is ~100 A/m
  return cfg;
}

}  // namespace

TEST(Transformer, TurnsRatioWithLightLoad) {
  fk::Circuit ckt;
  const auto p = ckt.node("p");
  const auto s = ckt.node("s");
  ckt.add<fk::VoltageSource>("V", p, fk::kGround,
                             std::make_shared<fw::Sine>(1.5, 50.0));
  fm::CoreGeometry geom = small_core();  // Np = 100
  ckt.add<fk::JaTransformer>("T", p, fk::kGround, s, fk::kGround, geom,
                             /*turns_secondary=*/50, soft_params(),
                             soft_config());
  ckt.add<fk::Resistor>("Rload", s, fk::kGround, 10e3);  // light load

  fk::TransientOptions options;
  options.t_end = 0.04;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;

  double peak_p = 0.0, peak_s = 0.0;
  ASSERT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
    if (sol.t < 0.02) return;  // settle first
    peak_p = std::max(peak_p, std::fabs(sol.v(p)));
    peak_s = std::max(peak_s, std::fabs(sol.v(s)));
  }).ok());
  EXPECT_NEAR(peak_s / peak_p, 0.5, 0.06);  // Ns/Np = 50/100
}

TEST(Transformer, LoadCurrentReflectsToPrimary) {
  const auto peak_primary_with_load = [&](double r_load) {
    fk::Circuit ckt;
    const auto in = ckt.node("in");
    const auto p = ckt.node("p");
    const auto s = ckt.node("s");
    ckt.add<fk::VoltageSource>("V", in, fk::kGround,
                               std::make_shared<fw::Sine>(1.5, 50.0));
    ckt.add<fk::Resistor>("Rsrc", in, p, 0.5);
    ckt.add<fk::JaTransformer>("T", p, fk::kGround, s, fk::kGround,
                               small_core(), 50, soft_params(),
                               soft_config());
    ckt.add<fk::Resistor>("Rload", s, fk::kGround, r_load);

    fk::TransientOptions options;
    options.t_end = 0.04;
    options.dt_initial = 1e-6;
    options.dt_max = 2e-5;
    double peak_ip = 0.0;
    EXPECT_TRUE(fk::run_transient(ckt, options, [&](const fk::Solution& sol) {
      if (sol.t > 0.02) {
        peak_ip = std::max(peak_ip, std::fabs(sol.branch_current(1)));
      }
    }).ok());
    return peak_ip;
  };

  // The heavy load reflects to 0.25 * (Np/Ns)^2 = 1 Ohm on the primary —
  // well below the magnetising impedance, so load current dominates.
  const double light = peak_primary_with_load(10e3);
  const double heavy = peak_primary_with_load(0.25);
  EXPECT_GT(heavy, 1.5 * light);  // loading the secondary loads the primary
}

TEST(Transformer, CoreStateExposed) {
  fk::Circuit ckt;
  const auto p = ckt.node("p");
  const auto s = ckt.node("s");
  ckt.add<fk::VoltageSource>("V", p, fk::kGround,
                             std::make_shared<fw::Sine>(1.5, 50.0));
  auto& xfmr = ckt.add<fk::JaTransformer>("T", p, fk::kGround, s, fk::kGround,
                                          small_core(), 50, soft_params(),
                                          soft_config());
  ckt.add<fk::Resistor>("Rload", s, fk::kGround, 1e3);

  fk::TransientOptions options;
  options.t_end = 0.01;
  options.dt_initial = 1e-6;
  options.dt_max = 2e-5;
  ASSERT_TRUE(fk::run_transient(ckt, options, {}).ok());
  EXPECT_NE(xfmr.flux_density(), 0.0);
  EXPECT_NE(xfmr.field(), 0.0);
  EXPECT_NE(xfmr.primary_current(), 0.0);
}
