// Tests for the PULSE/EXP sources and the measurement (.meas) toolbox.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "util/constants.hpp"
#include "wave/pulse.hpp"

namespace fw = ferro::wave;
namespace fa = ferro::analysis;

TEST(Pulse, LevelsAndTiming) {
  // PULSE(0 5 1m 0.1m 0.2m 2m 5m)
  const fw::Pulse p(0.0, 5.0, 1e-3, 1e-4, 2e-4, 2e-3, 5e-3);
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);       // before delay
  EXPECT_DOUBLE_EQ(p.value(0.9e-3), 0.0);
  EXPECT_NEAR(p.value(1.05e-3), 2.5, 1e-9);  // mid-rise
  EXPECT_DOUBLE_EQ(p.value(1.1e-3), 5.0);    // top
  EXPECT_DOUBLE_EQ(p.value(2.0e-3), 5.0);    // still on
  EXPECT_NEAR(p.value(3.2e-3), 2.5, 1e-9);   // mid-fall
  EXPECT_DOUBLE_EQ(p.value(4.0e-3), 0.0);    // off
}

TEST(Pulse, Periodicity) {
  const fw::Pulse p(0.0, 5.0, 1e-3, 1e-4, 2e-4, 2e-3, 5e-3);
  EXPECT_DOUBLE_EQ(p.value(2.0e-3), p.value(2.0e-3 + 5e-3));
  EXPECT_DOUBLE_EQ(p.value(4.0e-3), p.value(4.0e-3 + 10e-3));
}

TEST(Pulse, DerivativeSigns) {
  const fw::Pulse p(0.0, 5.0, 1e-3, 1e-4, 2e-4, 2e-3, 5e-3);
  EXPECT_DOUBLE_EQ(p.derivative(0.5e-3), 0.0);
  EXPECT_DOUBLE_EQ(p.derivative(1.05e-3), 5.0 / 1e-4);
  EXPECT_DOUBLE_EQ(p.derivative(2.0e-3), 0.0);
  EXPECT_DOUBLE_EQ(p.derivative(3.2e-3), -5.0 / 2e-4);
}

TEST(Pulse, BreakpointsCoverCorners) {
  const fw::Pulse p(0.0, 5.0, 1e-3, 1e-4, 2e-4, 2e-3, 5e-3);
  const auto bp = p.breakpoints(2);
  ASSERT_EQ(bp.size(), 8u);
  EXPECT_DOUBLE_EQ(bp[0], 1e-3);
  EXPECT_DOUBLE_EQ(bp[1], 1.1e-3);
  EXPECT_DOUBLE_EQ(bp[2], 3.1e-3);
  EXPECT_DOUBLE_EQ(bp[3], 3.3e-3);
  EXPECT_DOUBLE_EQ(bp[4], 6e-3);  // next period
}

TEST(Exp, RiseAndDecay) {
  // EXP(0 1 0 1m 10m 1m)
  const fw::Exp e(0.0, 1.0, 0.0, 1e-3, 10e-3, 1e-3);
  EXPECT_DOUBLE_EQ(e.value(0.0), 0.0);
  EXPECT_NEAR(e.value(1e-3), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.value(5e-3), 1.0 - std::exp(-5.0), 1e-9);
  // After td2 the decay pulls back toward v1.
  EXPECT_LT(e.value(14e-3), e.value(10e-3));
  EXPECT_NEAR(e.value(40e-3), 0.0, 1e-9);
}

TEST(Exp, DerivativeMatchesFiniteDifference) {
  const fw::Exp e(0.0, 1.0, 1e-3, 2e-3, 8e-3, 3e-3);
  for (const double t : {2e-3, 5e-3, 9e-3, 20e-3}) {
    const double h = 1e-8;
    const double fd = (e.value(t + h) - e.value(t - h)) / (2.0 * h);
    EXPECT_NEAR(e.derivative(t), fd, 1e-4) << t;
  }
}

namespace {

fa::Trace sine_trace(double amplitude, double freq, double t_end,
                     std::size_t n) {
  fa::Trace trace;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t_end * static_cast<double>(i) / static_cast<double>(n - 1);
    trace.append(t, amplitude * std::sin(2.0 * ferro::util::kPi * freq * t));
  }
  return trace;
}

}  // namespace

TEST(Measure, AverageOfSineIsZero) {
  const fa::Trace trace = sine_trace(2.0, 50.0, 0.04, 4001);
  EXPECT_NEAR(fa::average(trace, 0.0, 0.04), 0.0, 1e-6);
}

TEST(Measure, AverageOfOffset) {
  fa::Trace trace;
  trace.append(0.0, 3.0);
  trace.append(1.0, 3.0);
  trace.append(2.0, 3.0);
  EXPECT_DOUBLE_EQ(fa::average(trace, 0.0, 2.0), 3.0);
  // Partial window uses interpolation.
  EXPECT_DOUBLE_EQ(fa::average(trace, 0.5, 1.5), 3.0);
}

TEST(Measure, RmsOfSine) {
  const fa::Trace trace = sine_trace(2.0, 50.0, 0.04, 8001);
  EXPECT_NEAR(fa::rms(trace, 0.0, 0.04), 2.0 / std::sqrt(2.0), 1e-4);
}

TEST(Measure, PeakWindowed) {
  const fa::Trace trace = sine_trace(2.0, 50.0, 0.04, 4001);
  EXPECT_NEAR(fa::peak(trace, 0.0, 0.04), 2.0, 1e-6);
  // A window catching only near the zero crossing sees a smaller peak.
  EXPECT_LT(fa::peak(trace, 0.0, 0.001), 1.0);
}

TEST(Measure, CrossAndRiseTime) {
  // v(t) = 1 - exp(-t): rise time = t90 - t10 = ln(9) ~ 2.197.
  fa::Trace trace;
  for (int i = 0; i <= 10000; ++i) {
    const double t = 10.0 * i / 10000.0;
    trace.append(t, 1.0 - std::exp(-t));
  }
  EXPECT_NEAR(fa::cross_time(trace, 0.5), std::log(2.0), 1e-3);
  EXPECT_NEAR(fa::rise_time(trace, 1.0), std::log(9.0), 1e-2);
  EXPECT_LT(fa::cross_time(trace, 2.0), 0.0);  // never crossed
}

TEST(Measure, ThdPureSineNearZero) {
  const fa::Trace trace = sine_trace(1.0, 50.0, 0.04, 8001);
  EXPECT_LT(fa::thd(trace, 0.0, 0.02, 2), 0.01);
}

TEST(Measure, ThdDetectsSquareWaveHarmonics) {
  // Ideal square wave THD = sqrt(pi^2/8 - 1) ~ 0.483.
  fa::Trace trace;
  for (int i = 0; i <= 20000; ++i) {
    const double t = 0.04 * i / 20000.0;
    const double phase = std::fmod(t * 50.0, 1.0);
    trace.append(t, phase < 0.5 ? 1.0 : -1.0);
  }
  const double measured = fa::thd(trace, 0.0, 0.02, 2, 25);
  EXPECT_NEAR(measured, 0.483, 0.05);
}

TEST(Measure, DegenerateInputsAreSafe) {
  fa::Trace empty;
  EXPECT_DOUBLE_EQ(fa::average(empty, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fa::rms(empty, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fa::peak(empty, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(fa::thd(empty, 0.0, 0.02), 0.0);
}
