// Tests for TimelessJa — the paper's timeless discretisation of dM/dH.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/bh.hpp"
#include "mag/timeless_ja.hpp"
#include "support/fixtures.hpp"
#include "util/constants.hpp"
#include "wave/sweep.hpp"

namespace fm = ferro::mag;
namespace fw = ferro::wave;

using ferro::testsupport::major_loop;
using ferro::testsupport::paper_config;

TEST(TimelessJa, VirginStateIsDemagnetised) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  EXPECT_DOUBLE_EQ(ja.magnetisation(), 0.0);
  EXPECT_DOUBLE_EQ(ja.flux_density(), 0.0);
  EXPECT_DOUBLE_EQ(ja.state().m_irr, 0.0);
  EXPECT_DOUBLE_EQ(ja.state().anchor_h, 0.0);
}

TEST(TimelessJa, NoEventBelowThreshold) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  ja.apply(10.0);  // below dhmax = 25
  ja.apply(20.0);
  EXPECT_EQ(ja.stats().field_events, 0u);
  EXPECT_EQ(ja.stats().samples, 2u);
  // The algebraic (reversible) part still responds.
  EXPECT_GT(ja.magnetisation(), 0.0);
}

TEST(TimelessJa, EventFiresAboveThreshold) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  ja.apply(30.0);
  EXPECT_EQ(ja.stats().field_events, 1u);
  EXPECT_EQ(ja.stats().integration_steps, 1u);
  EXPECT_GT(ja.state().m_irr, 0.0);
  EXPECT_DOUBLE_EQ(ja.state().anchor_h, 30.0);
}

TEST(TimelessJa, EventAccumulatesAcrossSmallSamples) {
  // Three 10 A/m samples: the third crosses the 25 A/m threshold and the
  // event spans the full accumulated 30 A/m.
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  ja.apply(10.0);
  ja.apply(20.0);
  EXPECT_EQ(ja.stats().field_events, 0u);
  ja.apply(30.0);
  EXPECT_EQ(ja.stats().field_events, 1u);
  EXPECT_DOUBLE_EQ(ja.state().anchor_h, 30.0);
}

TEST(TimelessJa, FluxDensityDefinition) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  ja.apply(5000.0);
  const double b = ja.flux_density();
  EXPECT_NEAR(b, ferro::util::kMu0 * (ja.magnetisation() + 5000.0), 1e-15);
}

TEST(TimelessJa, MagnetisationBoundedByMsat) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) {
    ja.apply(h);
    EXPECT_LE(std::fabs(ja.state().m_total), 1.0);
  }
}

TEST(TimelessJa, SlopeClampsFireAfterReversal) {
  // Right after a turning point the listing's denominator goes negative
  // (delta*k flips sign while Man-M is still large) — the clamp must fire.
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) ja.apply(h);
  EXPECT_GT(ja.stats().slope_clamps, 0u);
}

TEST(TimelessJa, EulerNeverTripsDirectionClamp) {
  // With the slope clamp active, Forward Euler's dm always has dh's sign.
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) ja.apply(h);
  EXPECT_EQ(ja.stats().direction_clamps, 0u);
}

TEST(TimelessJa, LastSlopeNonNegative) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) {
    ja.apply(h);
    EXPECT_GE(ja.last_slope(), 0.0);
  }
}

TEST(TimelessJa, HysteresisProducesRemanence) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  // Saturate positive, come back to zero field.
  fw::SweepBuilder b(10.0);
  b.to(10e3).to(0.0);
  for (const double h : b.build().h) ja.apply(h);
  EXPECT_GT(ja.flux_density(), 0.5);  // remanent flux stays
}

TEST(TimelessJa, RisingAndFallingBranchesDiffer) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  double b_rising_at_zero = 0.0;
  double b_falling_at_zero = 0.0;
  // One full cycle sampled finely; capture B at H~0 on both branches.
  const fw::HSweep sweep = major_loop(5.0, 1);
  double prev_h = 0.0;
  for (const double h : sweep.h) {
    ja.apply(h);
    if (std::fabs(h) < 2.6) {
      if (h >= prev_h) {
        b_rising_at_zero = ja.flux_density();
      } else {
        b_falling_at_zero = ja.flux_density();
      }
    }
    prev_h = h;
  }
  EXPECT_GT(b_falling_at_zero, 0.3);   // +Br on the way down
  EXPECT_LT(b_rising_at_zero, -0.3);   // -Br on the way up
}

TEST(TimelessJa, LoopClosesAfterCycling) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  const fw::HSweep one_cycle = fw::SweepBuilder(10.0).cycles(10e3, 1).build();
  for (const double h : one_cycle.h) ja.apply(h);
  const double b_end_cycle1 = ja.flux_density();
  // Second identical cycle from +10k: -10k then back to +10k.
  fw::SweepBuilder second(10.0, 10e3);
  second.to(-10e3).to(10e3);
  for (const double h : second.build().h) ja.apply(h);
  const double b_end_cycle2 = ja.flux_density();
  EXPECT_NEAR(b_end_cycle1, b_end_cycle2, 1e-3);
}

TEST(TimelessJa, ResetRestoresVirginState) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) ja.apply(h);
  ja.reset();
  EXPECT_DOUBLE_EQ(ja.magnetisation(), 0.0);
  EXPECT_EQ(ja.stats().samples, 0u);
  EXPECT_DOUBLE_EQ(ja.state().anchor_h, 0.0);
}

TEST(TimelessJa, SetStateRoundTrip) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  for (const double h : major_loop().h) ja.apply(h);
  const fm::TimelessState saved = ja.state();
  const double b_saved = ja.flux_density();

  fm::TimelessJa other(fm::paper_parameters(), paper_config());
  other.set_state(saved);
  EXPECT_DOUBLE_EQ(other.flux_density(), b_saved);
  EXPECT_DOUBLE_EQ(other.state().m_irr, saved.m_irr);
}

TEST(TimelessJa, CopyIsIndependent) {
  fm::TimelessJa ja(fm::paper_parameters(), paper_config());
  ja.apply(5000.0);
  fm::TimelessJa copy = ja;
  copy.apply(8000.0);
  EXPECT_DOUBLE_EQ(ja.state().present_h, 5000.0);
  EXPECT_DOUBLE_EQ(copy.state().present_h, 8000.0);
  EXPECT_NE(copy.magnetisation(), ja.magnetisation());
}

TEST(TimelessJa, SmallerDhmaxConvergesToReference) {
  // The event threshold is the discretisation control: halving it must
  // reduce the deviation from a near-continuous reference (ABL1 property).
  const fw::HSweep sweep = major_loop(1.0, 1);

  fm::TimelessConfig ref_cfg;
  ref_cfg.dhmax = 1e-3;
  ref_cfg.scheme = fm::HIntegrator::kRk4;
  const fm::BhCurve ref_curve =
      ferro::testsupport::run_timeless(fm::paper_parameters(), ref_cfg, sweep);

  const auto error_with = [&](double dhmax) {
    fm::TimelessConfig cfg;
    cfg.dhmax = dhmax;
    const fm::BhCurve curve =
        ferro::testsupport::run_timeless(fm::paper_parameters(), cfg, sweep);
    return ferro::testsupport::max_b_deviation(curve, ref_curve);
  };

  const double e_coarse = error_with(200.0);
  const double e_mid = error_with(50.0);
  const double e_fine = error_with(10.0);
  EXPECT_LT(e_mid, e_coarse);
  EXPECT_LT(e_fine, e_mid);
}

TEST(TimelessJa, SubsteppingImprovesCoarseEvents) {
  // One coarse event (500 A/m) integrated in 10 sub-steps must land nearer
  // the fine-grained trajectory than a single Euler step.
  const fw::HSweep sweep = fw::SweepBuilder(500.0).to(10e3).build();

  fm::TimelessConfig fine_cfg;
  fine_cfg.dhmax = 1.0;
  fm::TimelessJa fine(fm::paper_parameters(), fine_cfg);
  const fw::HSweep fine_sweep = fw::SweepBuilder(1.0).to(10e3).build();
  for (const double h : fine_sweep.h) fine.apply(h);

  fm::TimelessConfig coarse_cfg;
  coarse_cfg.dhmax = 400.0;
  fm::TimelessJa coarse(fm::paper_parameters(), coarse_cfg);
  for (const double h : sweep.h) coarse.apply(h);

  fm::TimelessConfig sub_cfg = coarse_cfg;
  sub_cfg.substep_max = 50.0;
  fm::TimelessJa sub(fm::paper_parameters(), sub_cfg);
  for (const double h : sweep.h) sub.apply(h);

  const double err_coarse = std::fabs(coarse.magnetisation() - fine.magnetisation());
  const double err_sub = std::fabs(sub.magnetisation() - fine.magnetisation());
  EXPECT_LT(err_sub, err_coarse);
  EXPECT_GT(sub.stats().integration_steps, coarse.stats().integration_steps);
}

TEST(TimelessJa, HigherOrderSchemesReduceError) {
  // ABL2 property: at a fixed (coarse) dhmax, Heun and RK4 in H land closer
  // to the tiny-step reference than Forward Euler.
  const fw::HSweep sweep = fw::SweepBuilder(150.0).cycles(10e3, 1).build();

  fm::TimelessConfig ref_cfg;
  ref_cfg.dhmax = 1e-2;
  ref_cfg.scheme = fm::HIntegrator::kRk4;
  fm::TimelessJa ref(fm::paper_parameters(), ref_cfg);
  const fw::HSweep ref_sweep = fw::SweepBuilder(0.5).cycles(10e3, 1).build();
  for (const double h : ref_sweep.h) ref.apply(h);
  const double m_ref = ref.magnetisation();

  const auto error_with = [&](fm::HIntegrator scheme) {
    fm::TimelessConfig cfg;
    cfg.dhmax = 100.0;
    cfg.scheme = scheme;
    fm::TimelessJa ja(fm::paper_parameters(), cfg);
    for (const double h : sweep.h) ja.apply(h);
    return std::fabs(ja.magnetisation() - m_ref);
  };

  const double e_euler = error_with(fm::HIntegrator::kForwardEuler);
  const double e_heun = error_with(fm::HIntegrator::kHeun);
  EXPECT_LT(e_heun, e_euler);
}

TEST(TimelessJa, SchemeNames) {
  EXPECT_EQ(fm::to_string(fm::HIntegrator::kForwardEuler), "forward-euler");
  EXPECT_EQ(fm::to_string(fm::HIntegrator::kHeun), "heun");
  EXPECT_EQ(fm::to_string(fm::HIntegrator::kRk4), "rk4");
}

TEST(TimelessJa, UnclampedModelCanGoNonPhysical) {
  // With clamping off, the paper parameters (alpha*Ms = 4800 > k = 4000)
  // produce negative slopes — the CLM5 regime the clamp exists for.
  fm::TimelessConfig cfg = paper_config();
  cfg.clamp_negative_slope = false;
  cfg.clamp_direction = false;
  fm::TimelessJa ja(fm::paper_parameters(), cfg);
  bool saw_negative = false;
  double prev_b = 0.0;
  double prev_h = 0.0;
  bool first = true;
  for (const double h : major_loop(5.0, 1).h) {
    ja.apply(h);
    const double b = ja.flux_density();
    if (!first) {
      const double dh = h - prev_h;
      if (dh != 0.0 && (b - prev_b) / dh < -1e-9) saw_negative = true;
    }
    prev_b = b;
    prev_h = h;
    first = false;
  }
  EXPECT_TRUE(saw_negative);
}

TEST(BhCurve, AccessorsAndCsv) {
  fm::BhCurve curve;
  curve.append(1.0, 2.0, 3.0);
  curve.append({4.0, 5.0, 6.0});
  EXPECT_EQ(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.h_values()[1], 4.0);
  EXPECT_DOUBLE_EQ(curve.m_values()[0], 2.0);
  EXPECT_DOUBLE_EQ(curve.b_values()[1], 6.0);
  EXPECT_TRUE(curve.write_csv("test_bh_curve.csv"));
  std::remove("test_bh_curve.csv");
}

TEST(CoreGeometry, Conversions) {
  fm::CoreGeometry geom;
  geom.area = 2e-4;
  geom.path_length = 0.2;
  geom.turns = 50;
  EXPECT_DOUBLE_EQ(geom.field_from_current(2.0), 500.0);
  EXPECT_DOUBLE_EQ(geom.current_from_field(500.0), 2.0);
  EXPECT_DOUBLE_EQ(geom.flux_from_b(1.5), 3e-4);
  EXPECT_DOUBLE_EQ(geom.linkage_from_b(1.5), 1.5e-2);
}
